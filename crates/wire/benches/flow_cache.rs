//! Flow-verdict cache: what does a hit save, and what does a miss
//! cost?
//!
//! * `hit/N-flows` — per-packet cost of the cached fast path (key
//!   hash + lookup + offset apply) with N distinct flows resident,
//!   cycling through all of them so the probe windows stay warm but
//!   not single-slot hot.
//! * `slow/N-flows` — per-packet cost of the verifying slow chain the
//!   hit replaces (outer parse + checksum, decap bounds, VNI check,
//!   two FDB lookups, flow dissection) over the same frames.
//! * `miss-storm` — every packet is a brand-new flow: key hash, failed
//!   lookup, full slow chain, insert (with eviction once full). The
//!   gap between this and `slow` is the cache's total overhead when it
//!   never helps — the fallback-regression number.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use falcon_packet::WireBuf;
use falcon_wire::{
    flow_cache_key, full_verdict, stage, Fdb, FlowCache, FrameFactory, Lookup, Verdict,
};

const PAYLOAD: usize = 256;

fn frames_for(flows: u64) -> Vec<Vec<u8>> {
    let f = FrameFactory::default();
    (0..flows)
        .map(|flow| f.udp_wire(flow, 0, PAYLOAD).remove(0))
        .collect()
}

/// The per-packet byte work of the three stages a fresh hit skips.
fn slow_chain(frame: &[u8], fdb: &Fdb, vni: u32) -> u16 {
    let mut buf = *WireBuf::single(frame.to_vec());
    stage::pnic_verify(&buf, FrameFactory::host_mac()).expect("clean frame");
    stage::vxlan_decap(&mut buf, vni).expect("clean frame");
    stage::bridge_lookup(&buf, fdb).expect("programmed flow")
}

/// The per-packet work of a fresh hit: hash, probe, apply offsets.
fn hit_chain(frame: &[u8], cache: &mut FlowCache) -> Verdict {
    let key = flow_cache_key(frame).expect("cacheable frame");
    match cache.lookup(key, 0) {
        Lookup::Fresh(v) => {
            let mut buf = *WireBuf::single(frame.to_vec());
            buf.inner = Some(v.inner_start as usize..v.inner_end as usize);
            black_box(&buf);
            v
        }
        other => panic!("expected a fresh hit, got {other:?}"),
    }
}

fn bench_hit_vs_slow(c: &mut Criterion) {
    let f = FrameFactory::default();
    for flows in [1u64, 64, 4096] {
        let frames = frames_for(flows);
        let fdb = Fdb::for_flows(&f, flows);
        let mut cache = FlowCache::new(flows.max(8) as usize);
        for frame in &frames {
            let key = flow_cache_key(frame).unwrap();
            let v = full_verdict(frame, FrameFactory::host_mac(), f.vni, &fdb, 0).unwrap();
            cache.insert(key, v);
        }
        // A bounded probe window can evict under hash collisions even
        // at load factor 1.0, so cycle the hit loop over the flows
        // that actually stayed resident after the warm fill.
        let resident: Vec<Vec<u8>> = frames
            .iter()
            .filter(|frame| {
                let key = flow_cache_key(frame).expect("cacheable frame");
                matches!(cache.lookup(key, 0), Lookup::Fresh(_))
            })
            .cloned()
            .collect();
        assert!(!resident.is_empty(), "warm fill left nothing resident");
        let mut group = c.benchmark_group(&format!("flow_cache/{flows}-flows"));
        group.throughput(Throughput::Elements(1));
        let mut i = 0usize;
        group.bench_function("hit", |b| {
            b.iter(|| {
                i = (i + 1) % resident.len();
                hit_chain(black_box(&resident[i]), &mut cache)
            })
        });
        // The executor hashes the frame once per packet and carries
        // the key across every stage consult, so the probe-plus-apply
        // cost with the key in hand is the marginal per-consult price.
        let keys: Vec<u64> = resident
            .iter()
            .map(|frame| flow_cache_key(frame).expect("cacheable frame"))
            .collect();
        let mut k = 0usize;
        group.bench_function("hit-keyed", |b| {
            b.iter(|| {
                k = (k + 1) % keys.len();
                match cache.lookup(black_box(keys[k]), 0) {
                    Lookup::Fresh(v) => black_box(v.bridge_port),
                    other => panic!("expected a fresh hit, got {other:?}"),
                }
            })
        });
        let mut j = 0usize;
        group.bench_function("slow", |b| {
            b.iter(|| {
                j = (j + 1) % frames.len();
                slow_chain(black_box(&frames[j]), &fdb, f.vni)
            })
        });
        group.finish();
    }
}

fn bench_miss_storm(c: &mut Criterion) {
    let f = FrameFactory::default();
    // Enough distinct flows that the measurement loop never wraps.
    const STORM_FLOWS: u64 = 8192;
    let frames = frames_for(STORM_FLOWS);
    let fdb = Fdb::for_flows(&f, STORM_FLOWS);
    let mut group = c.benchmark_group("flow_cache/miss-storm");
    group.throughput(Throughput::Elements(1));
    let mut cache = FlowCache::new(1024);
    let mut i = 0usize;
    group.bench_function("miss-fill", |b| {
        b.iter(|| {
            i = (i + 1) % frames.len();
            let frame = black_box(&frames[i]);
            let key = flow_cache_key(frame).expect("cacheable frame");
            // All-new flows: the lookup misses, the slow chain runs,
            // the verdict is inserted (evicting once the table fills).
            match cache.lookup(key, 0) {
                Lookup::Fresh(v) => v.bridge_port,
                _ => {
                    let port = slow_chain(frame, &fdb, f.vni);
                    let v = full_verdict(frame, FrameFactory::host_mac(), f.vni, &fdb, 0)
                        .expect("clean frame");
                    cache.insert(key, v);
                    port
                }
            }
        })
    });
    let mut j = 0usize;
    group.bench_function("slow-baseline", |b| {
        b.iter(|| {
            j = (j + 1) % frames.len();
            slow_chain(black_box(&frames[j]), &fdb, f.vni)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_hit_vs_slow, bench_miss_storm);
criterion_main!(benches);

//! IPv4 header codec (20-byte header, no options).

use serde::{Deserialize, Serialize};

use crate::checksum::{internet_checksum, verify};
use crate::CodecError;

/// Length of an IPv4 header without options.
pub const IPV4_HDR_LEN: usize = 20;

/// An IPv4 address stored in host byte order, with dotted-quad helpers.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct Ipv4Addr4(pub u32);

impl Ipv4Addr4 {
    /// Builds an address from dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr4(u32::from_be_bytes([a, b, c, d]))
    }

    /// Returns the four octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }
}

impl core::fmt::Display for Ipv4Addr4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let o = self.octets();
        write!(f, "{}.{}.{}.{}", o[0], o[1], o[2], o[3])
    }
}

/// IP protocol numbers the simulation understands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IpProto {
    /// TCP (6).
    Tcp,
    /// UDP (17).
    Udp,
    /// Anything else, preserved verbatim.
    Other(u8),
}

impl IpProto {
    /// Returns the wire value.
    pub fn to_u8(self) -> u8 {
        match self {
            IpProto::Tcp => 6,
            IpProto::Udp => 17,
            IpProto::Other(v) => v,
        }
    }

    /// Parses a wire value.
    pub fn from_u8(v: u8) -> Self {
        match v {
            6 => IpProto::Tcp,
            17 => IpProto::Udp,
            other => IpProto::Other(other),
        }
    }
}

/// An IPv4 header (IHL fixed at 5, i.e. no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ipv4Hdr {
    /// Total length: header plus payload, in bytes.
    pub total_len: u16,
    /// Identification field.
    pub ident: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol.
    pub proto: IpProto,
    /// Source address.
    pub src: Ipv4Addr4,
    /// Destination address.
    pub dst: Ipv4Addr4,
}

impl Ipv4Hdr {
    /// Serializes the header (with a freshly computed checksum) into
    /// `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`IPV4_HDR_LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0] = 0x45; // Version 4, IHL 5.
        buf[1] = 0; // DSCP/ECN.
        buf[2..4].copy_from_slice(&self.total_len.to_be_bytes());
        buf[4..6].copy_from_slice(&self.ident.to_be_bytes());
        buf[6..8].copy_from_slice(&0x4000u16.to_be_bytes()); // DF set.
        buf[8] = self.ttl;
        buf[9] = self.proto.to_u8();
        buf[10] = 0;
        buf[11] = 0;
        buf[12..16].copy_from_slice(&self.src.0.to_be_bytes());
        buf[16..20].copy_from_slice(&self.dst.0.to_be_bytes());
        let csum = internet_checksum(&buf[..IPV4_HDR_LEN]);
        buf[10..12].copy_from_slice(&csum.to_be_bytes());
    }

    /// Appends the header to a byte vector.
    pub fn push_onto(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + IPV4_HDR_LEN, 0);
        self.write(&mut out[start..]);
    }

    /// Parses and checksum-verifies a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<Ipv4Hdr, CodecError> {
        if buf.len() < IPV4_HDR_LEN {
            return Err(CodecError::Truncated {
                what: "ipv4",
                need: IPV4_HDR_LEN,
                have: buf.len(),
            });
        }
        if buf[0] >> 4 != 4 {
            return Err(CodecError::Malformed {
                what: "ipv4",
                why: "version is not 4",
            });
        }
        let ihl = (buf[0] & 0x0F) as usize * 4;
        if ihl != IPV4_HDR_LEN {
            return Err(CodecError::Malformed {
                what: "ipv4",
                why: "options not supported",
            });
        }
        if !verify(&buf[..IPV4_HDR_LEN]) {
            return Err(CodecError::BadChecksum { what: "ipv4" });
        }
        let total_len = u16::from_be_bytes([buf[2], buf[3]]);
        if (total_len as usize) < IPV4_HDR_LEN {
            return Err(CodecError::Malformed {
                what: "ipv4",
                why: "total_len < header",
            });
        }
        Ok(Ipv4Hdr {
            total_len,
            ident: u16::from_be_bytes([buf[4], buf[5]]),
            ttl: buf[8],
            proto: IpProto::from_u8(buf[9]),
            src: Ipv4Addr4(u32::from_be_bytes([buf[12], buf[13], buf[14], buf[15]])),
            dst: Ipv4Addr4(u32::from_be_bytes([buf[16], buf[17], buf[18], buf[19]])),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Hdr {
        Ipv4Hdr {
            total_len: 1500,
            ident: 0x1234,
            ttl: 64,
            proto: IpProto::Udp,
            src: Ipv4Addr4::new(10, 0, 0, 1),
            dst: Ipv4Addr4::new(10, 0, 0, 2),
        }
    }

    #[test]
    fn round_trip() {
        let hdr = sample();
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        assert_eq!(buf.len(), IPV4_HDR_LEN);
        assert_eq!(Ipv4Hdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn checksum_detects_corruption() {
        let mut buf = Vec::new();
        sample().write({
            buf.resize(IPV4_HDR_LEN, 0);
            &mut buf[..]
        });
        buf[15] ^= 0x01; // Flip a source-address bit.
        assert_eq!(
            Ipv4Hdr::parse(&buf).unwrap_err(),
            CodecError::BadChecksum { what: "ipv4" }
        );
    }

    #[test]
    fn rejects_wrong_version() {
        let mut buf = vec![0u8; IPV4_HDR_LEN];
        sample().write(&mut buf);
        buf[0] = 0x65; // Version 6.
        assert!(matches!(
            Ipv4Hdr::parse(&buf),
            Err(CodecError::Malformed { what: "ipv4", .. })
        ));
    }

    #[test]
    fn rejects_options() {
        let mut buf = vec![0u8; IPV4_HDR_LEN];
        sample().write(&mut buf);
        buf[0] = 0x46; // IHL 6.
        assert!(matches!(
            Ipv4Hdr::parse(&buf),
            Err(CodecError::Malformed {
                what: "ipv4",
                why: "options not supported"
            })
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            Ipv4Hdr::parse(&[0u8; 10]),
            Err(CodecError::Truncated { what: "ipv4", .. })
        ));
    }

    #[test]
    fn addr_display_and_octets() {
        let a = Ipv4Addr4::new(192, 168, 1, 42);
        assert_eq!(a.to_string(), "192.168.1.42");
        assert_eq!(a.octets(), [192, 168, 1, 42]);
    }

    #[test]
    fn proto_round_trip() {
        for v in [0u8, 6, 17, 89, 255] {
            assert_eq!(IpProto::from_u8(v).to_u8(), v);
        }
    }
}

//! Falcon: fast and balanced container networking.
//!
//! This crate is the paper's primary contribution — the three
//! mechanisms of *Parallelizing Packet Processing in Container Overlay
//! Networks* (EuroSys '21), implemented against the stage-transition
//! hook of `falcon-netstack`:
//!
//! 1. **Softirq pipelining** (§4.1): [`get_falcon_cpu`] hashes the flow
//!    hash *plus the device ifindex* through the kernel's `hash_32`, so
//!    each device stage of one flow maps to a (usually different)
//!    dedicated CPU. Per-(flow, device) processing stays on one core —
//!    order is preserved — while the stages of one flow run
//!    concurrently on different cores.
//! 2. **Softirq splitting** (§4.2): enabled via
//!    [`FalconConfig::split_gro`], which configures the netstack to
//!    insert the stage-transition function before `napi_gro_receive`
//!    ("GRO-splitting"), breaking a core-saturating pNIC stage into two
//!    pipeline half-stages with their own ifindex identities.
//! 3. **Dynamic softirq balancing** (§4.3, Algorithm 1):
//!    [`FalconSteering`] gates itself on the system-wide load average
//!    (`FALCON_LOAD_THRESHOLD`) and picks CPUs by *two random choices*:
//!    the device hash first, a re-hash if that core is busy —
//!    committing to the second choice to avoid herding.
//!
//! # Examples
//!
//! ```
//! use falcon::{FalconConfig, FalconSteering};
//! use falcon_cpusim::CpuSet;
//!
//! let config = FalconConfig::new(CpuSet::range(1, 5));
//! let steering = FalconSteering::new(config);
//! // Hand `Box::new(steering)` to `falcon_netstack::sim::SimRunner`.
//! ```

pub mod balance;
pub mod config;

pub use balance::{falcon_choices, falcon_choices_by, get_falcon_cpu, FalconSteering};
pub use config::FalconConfig;

/// Builds a Falcon-enabled steering policy and applies the
/// configuration's stack-side settings (GRO splitting) to a
/// [`StackConfig`](falcon_netstack::StackConfig).
///
/// This is the one-stop setup the experiment harness uses:
///
/// ```
/// use falcon::{enable_falcon, FalconConfig};
/// use falcon_cpusim::CpuSet;
/// use falcon_netstack::{KernelVersion, NetMode, StackConfig};
///
/// let mut stack = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
/// let config = FalconConfig::new(CpuSet::range(1, 5)).with_split_gro(true);
/// let steering = enable_falcon(&mut stack, config);
/// assert!(stack.split_gro);
/// ```
pub fn enable_falcon(
    stack: &mut falcon_netstack::StackConfig,
    config: FalconConfig,
) -> Box<dyn falcon_netstack::Steering> {
    stack.split_gro = config.split_gro;
    Box::new(FalconSteering::new(config))
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_cpusim::CpuSet;
    use falcon_netstack::{KernelVersion, NetMode, StackConfig};

    #[test]
    fn enable_falcon_wires_split_gro() {
        let mut stack = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
        assert!(!stack.split_gro);
        let steering = enable_falcon(
            &mut stack,
            FalconConfig::new(CpuSet::range(1, 5)).with_split_gro(true),
        );
        assert!(stack.split_gro);
        assert_eq!(steering.name(), "falcon");
    }

    #[test]
    fn enable_falcon_without_split_leaves_stack() {
        let mut stack = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
        let _ = enable_falcon(&mut stack, FalconConfig::new(CpuSet::range(1, 5)));
        assert!(!stack.split_gro);
    }
}

//! Anatomy of the overlay receive path: follow individual packets
//! through the pNIC → VXLAN → bridge/veth pipeline and see which CPU
//! ran each stage (the paper's Figure 3/Figure 8 walk-through).
//!
//! ```text
//! cargo run --release -p falcon-examples --bin overlay_anatomy
//! ```

use falcon::{enable_falcon, FalconConfig};
use falcon_cpusim::CpuSet;
use falcon_netstack::sim::{App, MsgMeta, SimApi, SimRunner};
use falcon_netstack::{
    KernelVersion, NetMode, SimConfig, SockId, StackConfig, StayLocal, Steering,
};
use falcon_simcore::SimDuration;

/// Sends a handful of datagrams and records their hop traces.
struct Tracer {
    sent: u32,
}

impl App for Tracer {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let container = api.add_container(0, 10);
        api.bind_udp(Some(container), 5001, 5, 300);
        let flow = api.udp_flow(Some(container), 5001, 64);
        api.udp_send(flow, 64);
        self.sent = 1;
    }

    fn on_server_msg(&mut self, api: &mut SimApi<'_>, sock: SockId, meta: &MsgMeta) {
        api.respond(sock, meta, 16);
    }

    fn on_client_msg(
        &mut self,
        api: &mut SimApi<'_>,
        flow: falcon_netstack::FlowId,
        _meta: &MsgMeta,
    ) {
        if self.sent < 5 {
            api.udp_send(flow, 64);
            self.sent += 1;
        }
    }
}

fn run(use_falcon: bool) -> SimRunner {
    let mut stack = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
    let steering: Box<dyn Steering> = if use_falcon {
        enable_falcon(&mut stack, FalconConfig::new(CpuSet::range(1, 5)))
    } else {
        Box::new(StayLocal)
    };
    let app = Tracer { sent: 0 };
    let mut runner = SimRunner::new(SimConfig::new(stack), steering, Box::new(app));
    runner.run_for(SimDuration::from_millis(10));
    runner
}

fn main() {
    println!("Anatomy of VXLAN overlay packet reception\n");
    println!("The overlay data path (paper Figure 3):");
    println!("  wire -> pNIC(RSS) -> hardirq -> mlx5e_napi_poll -> RPS ->");
    println!("  backlog -> ip_rcv -> udp_rcv -> vxlan_rcv(decap) -> gro_cell ->");
    println!("  gro_cell_poll -> bridge -> veth_xmit -> backlog ->");
    println!("  inner ip/udp -> socket -> copy_to_user -> application\n");

    for use_falcon in [false, true] {
        let runner = run(use_falcon);
        let m = runner.machine();
        let name = if use_falcon { "Falcon" } else { "vanilla" };
        println!("== {name} overlay ==");
        println!("devices:");
        for dev in m.devices.iter() {
            println!(
                "  ifindex {:>2}  {:<9} ({})",
                dev.ifindex,
                dev.name,
                dev.kind.label()
            );
        }
        let c = runner.counters();
        println!(
            "stage transitions: {} stayed local, {} moved to another cpu",
            c.steered_local, c.steered_remote
        );
        println!(
            "NET_RX softirqs raised: {} for {} delivered datagrams",
            m.cores.irqs.total(falcon_metrics::IrqKind::NetRx),
            c.total_delivered()
        );
        println!(
            "ordering: {} checks, {} violations\n",
            m.order.checks(),
            m.order.violations()
        );
    }
    println!("With the vanilla kernel every stage of a flow runs on the same RPS-chosen");
    println!("core; Falcon's device-aware hash pipelines the stages over FALCON_CPUS.");
}

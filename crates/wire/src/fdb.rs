//! The bridge's forwarding database.
//!
//! A Linux bridge forwards by destination MAC; on a static overlay the
//! daemon (e.g. flannel/Cilium's agent) programs the FDB instead of
//! flooding unknown unicast. This FDB is strict the same way: both the
//! source and destination MAC of an inner frame must be known, so a
//! corrupted inner Ethernet header — the one region no checksum covers —
//! is still caught at the bridge stage instead of delivering garbage.

use std::collections::BTreeMap;

use falcon_packet::MacAddr;

use crate::FrameFactory;

/// MAC → bridge port, plus the strict membership check.
#[derive(Debug, Clone, Default)]
pub struct Fdb {
    ports: BTreeMap<[u8; 6], u16>,
}

impl Fdb {
    /// An FDB pre-programmed with both endpoint MACs of flows
    /// `0..flows`, as [`FrameFactory::inner_macs`] assigns them. The
    /// source side lands on port `2*flow`, the destination (veth) side
    /// on `2*flow + 1`.
    pub fn for_flows(factory: &FrameFactory, flows: u64) -> Fdb {
        let mut ports = BTreeMap::new();
        for flow in 0..flows {
            let (src, dst) = factory.inner_macs(flow);
            ports.insert(src.0, (2 * (flow as u16)) & 0x7FFF);
            ports.insert(dst.0, (2 * (flow as u16) + 1) & 0x7FFF);
        }
        Fdb { ports }
    }

    /// Looks up a MAC, returning its bridge port.
    pub fn lookup(&self, mac: MacAddr) -> Option<u16> {
        self.ports.get(&mac.0).copied()
    }

    /// Number of programmed entries.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the FDB is empty.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knows_both_ends_of_each_flow() {
        let f = FrameFactory::default();
        let fdb = Fdb::for_flows(&f, 4);
        assert_eq!(fdb.len(), 8);
        for flow in 0..4 {
            let (src, dst) = f.inner_macs(flow);
            assert!(fdb.lookup(src).is_some());
            assert!(fdb.lookup(dst).is_some());
            assert_ne!(fdb.lookup(src), fdb.lookup(dst));
        }
        assert_eq!(fdb.lookup(MacAddr::from_index(0xDEAD)), None);
    }
}

//! The real-thread dataplane experiment: vanilla vs Falcon on actual
//! cores.
//!
//! Everything else in this crate measures the *simulation* (virtual
//! time, one thread). This module drives
//! [`falcon_dataplane::run_scenario`], where the same modeled stage
//! costs are busy-spun on real pinned threads and the clock on the wall
//! is the result. It provides the scenario presets for the two scales,
//! the back-to-back vanilla/Falcon comparison that becomes
//! `BENCH_dataplane.json`, a human-readable rendering, and a Perfetto
//! export of a traced Falcon run so the thread-level pipelining is
//! visible.
//!
//! With `split_gro` the preset switches to the Figure-13 TCP-4KB shape
//! (one GRO-coalesced 4096-byte message per injected unit, MSS 1448)
//! and runs the five-hop pipeline: that is the traffic whose pNIC
//! stage carries the ~45 %/~45 % alloc/GRO halves splitting exists to
//! peel apart. On UDP the pNIC stage is never the bottleneck, so a
//! split run there would measure nothing.

use falcon_dataplane::{
    run_scenario, ConntrackOracle, DataplaneComparison, DataplaneReport, FlowCacheComparison,
    PolicyKind, RunOutput, Scenario, SweepPoint, SweepReport, TelemetryOverhead, TelemetrySpec,
    TrafficShape,
};
use falcon_trace::chrome;

use crate::measure::Scale;

/// The dataplane scenario at a given scale.
///
/// `Quick` shrinks the packet count and scales the stage costs down so
/// a smoke run finishes in tens of milliseconds even on a loaded 2-core
/// CI runner; `Full` runs the model costs as-is for a measurement worth
/// quoting. With `split_gro`, the scenario injects the TCP-4KB shape
/// and the pipeline grows the fifth (GRO-half) hop. With `wire`, every
/// injected unit carries real VXLAN-encapsulated bytes and each stage
/// does its byte-level slice of work inside the modeled budget.
pub fn scenario_for(
    scale: Scale,
    workers: usize,
    flows: u64,
    split_gro: bool,
    wire: bool,
) -> Scenario {
    let mut base = Scenario {
        wire,
        ..Scenario::default()
    };
    if split_gro {
        base.split_gro = true;
        base.shape = TrafficShape::TcpGro { mss: 1448 };
        base.payload = 4096;
    }
    match scale {
        Scale::Quick => Scenario {
            workers,
            flows,
            packets: 6_000,
            work_scale_milli: 250,
            ..base
        },
        Scale::Full => Scenario {
            workers,
            flows,
            packets: if split_gro { 40_000 } else { 80_000 },
            work_scale_milli: 1000,
            ..base
        },
    }
}

/// Runs the same scenario under both policies and pairs the reports.
pub fn run_comparison(
    scale: Scale,
    workers: usize,
    flows: u64,
    split_gro: bool,
    wire: bool,
) -> DataplaneComparison {
    run_comparison_with(scale, workers, flows, split_gro, wire, None, None, false)
}

/// Runs the replicate leg of a comparison and attaches it: the same
/// scenario under `Policy::Replicate` (per-flow round-robin spraying
/// with per-worker SCR conntrack shards), its speedup over vanilla,
/// and — when both runs are drop-free wire runs — the SCR differential
/// oracle against the vanilla ground truth. The oracle is only defined
/// on drop-free pairs: a queue drop is a scheduling accident, so the
/// two policies would legitimately track different packet sets.
fn attach_replicate(cmp: &mut DataplaneComparison, scenario: &Scenario, vanilla_out: &RunOutput) {
    let repl_out = run_scenario(&scenario.clone().with_policy(PolicyKind::Replicate));
    let report = DataplaneReport::from_run(&repl_out);
    let oracle = (scenario.wire && vanilla_out.dropped() == 0 && repl_out.dropped() == 0)
        .then(|| ConntrackOracle::new(vanilla_out, &repl_out));
    cmp.set_replicate(report, oracle);
}

/// [`run_comparison`] with live telemetry on the Falcon run, and
/// optionally the flow-verdict-cache differential leg.
///
/// When `telemetry` is set, the Falcon leg runs with the sampler (and
/// its exporters) attached, and a *third* pass — Falcon with telemetry
/// off — measures what the instrumentation costs: the pair lands in
/// `telemetry_overhead` so `BENCH_wire.json` records the on/off goodput
/// side by side. The vanilla leg always runs bare; the comparison's
/// headline numbers stay an apples-to-apples policy contest.
///
/// When `flow_cache` is set (to the per-worker entry count), the same
/// Falcon scenario is re-run with flow-verdict caches on and the
/// cached-vs-uncached pair lands in `flow_cache` — both legs best-of-3
/// (the primary Falcon run counts as one uncached sample), the same
/// one-sided-noise treatment the telemetry-overhead pair gets.
///
/// When `replicate` is set, a third leg runs the same scenario under
/// `Policy::Replicate` and the comparison carries its report, its
/// speedup over vanilla, and (drop-free wire runs) the SCR
/// differential oracle against the vanilla ground truth.
#[allow(clippy::too_many_arguments)]
pub fn run_comparison_with(
    scale: Scale,
    workers: usize,
    flows: u64,
    split_gro: bool,
    wire: bool,
    telemetry: Option<TelemetrySpec>,
    flow_cache: Option<usize>,
    replicate: bool,
) -> DataplaneComparison {
    let scenario = scenario_for(scale, workers, flows, split_gro, wire);
    let vanilla_out = run_scenario(&scenario.clone().with_policy(PolicyKind::Vanilla));
    let vanilla = DataplaneReport::from_run(&vanilla_out);
    let mut falcon_scenario = scenario.clone().with_policy(PolicyKind::Falcon);
    falcon_scenario.telemetry = telemetry.clone();
    let falcon = DataplaneReport::from_run(&run_scenario(&falcon_scenario));
    let mut cmp = DataplaneComparison::new(&scenario, vanilla, falcon);
    if replicate {
        attach_replicate(&mut cmp, &scenario, &vanilla_out);
    }
    if let Some(spec) = telemetry {
        let interval_ms = if spec.interval_ms == 0 {
            falcon_telemetry::DEFAULT_INTERVAL_MS
        } else {
            spec.interval_ms
        };
        // Scheduler noise on a shared host is one-sided (preemption
        // only slows a run down), so each side of the overhead pair is
        // best-of-3: the max goodput per configuration estimates its
        // unpreempted capacity, and the systematic telemetry cost
        // survives the ratio while the noise doesn't. The primary
        // Falcon leg counts as one of the telemetry-on runs; its
        // exporters already wrote the artifacts, so the extra on-runs
        // keep them quiet.
        let key = |r: &DataplaneReport| {
            if r.wire {
                r.goodput_gbps
            } else {
                r.throughput_pps
            }
        };
        let pick = |best: DataplaneReport, next: DataplaneReport| {
            if key(&next) > key(&best) {
                next
            } else {
                best
            }
        };
        let mut best_on = cmp.falcon.clone();
        for _ in 0..2 {
            let mut on = scenario.clone().with_policy(PolicyKind::Falcon);
            on.telemetry = Some(TelemetrySpec {
                interval_ms: spec.interval_ms,
                jsonl_path: None,
                prom_addr: None,
                prom_addr_tx: None,
            });
            best_on = pick(best_on, DataplaneReport::from_run(&run_scenario(&on)));
        }
        let mut best_off: Option<DataplaneReport> = None;
        for _ in 0..3 {
            let off = DataplaneReport::from_run(&run_scenario(
                &scenario.clone().with_policy(PolicyKind::Falcon),
            ));
            best_off = Some(match best_off {
                Some(best) => pick(best, off),
                None => off,
            });
        }
        let best_off = best_off.expect("three off-runs");
        cmp.telemetry_overhead = Some(TelemetryOverhead::new(&best_off, &best_on, interval_ms));
    }
    if let Some(entries) = flow_cache {
        // Best-of-3 per side, like the telemetry-overhead pair:
        // preemption noise is one-sided, so the max per configuration
        // estimates unpreempted capacity and the cache's systematic
        // effect survives the ratio.
        let key = |r: &DataplaneReport| {
            if r.wire {
                r.goodput_gbps
            } else {
                r.throughput_pps
            }
        };
        let pick = |best: DataplaneReport, next: DataplaneReport| {
            if key(&next) > key(&best) {
                next
            } else {
                best
            }
        };
        let mut best_uncached = cmp.falcon.clone();
        for _ in 0..2 {
            let uncached = DataplaneReport::from_run(&run_scenario(
                &scenario.clone().with_policy(PolicyKind::Falcon),
            ));
            best_uncached = pick(best_uncached, uncached);
        }
        let mut best_cached: Option<DataplaneReport> = None;
        for _ in 0..3 {
            let mut cached_scenario = scenario.clone().with_policy(PolicyKind::Falcon);
            cached_scenario.flow_cache = true;
            cached_scenario.flow_cache_entries = entries;
            let cached = DataplaneReport::from_run(&run_scenario(&cached_scenario));
            best_cached = Some(match best_cached {
                Some(best) => pick(best, cached),
                None => cached,
            });
        }
        let best_cached = best_cached.expect("three cached runs");
        cmp.flow_cache = Some(FlowCacheComparison::new(
            entries,
            &best_uncached,
            best_cached,
        ));
    }
    cmp
}

/// Renders one report as an indented block.
fn render_report(r: &DataplaneReport, out: &mut String) {
    use std::fmt::Write;
    let _ = writeln!(
        out,
        "  {:<8}  {:>10.0} pps  wall {:>7.1} ms  delivered {}/{} (drops {})",
        r.policy,
        r.throughput_pps,
        r.wall_ns as f64 / 1e6,
        r.delivered,
        r.injected,
        r.dropped,
    );
    let _ = writeln!(
        out,
        "            latency mean {:.1} us  p50 {:.1} us  p99 {:.1} us  max {:.1} us",
        r.latency.mean_ns as f64 / 1e3,
        r.latency.p50_ns as f64 / 1e3,
        r.latency.p99_ns as f64 / 1e3,
        r.latency.max_ns as f64 / 1e3,
    );
    let _ = writeln!(
        out,
        "            per-worker stage execs {:?}  second-choices {}  migrations {}",
        r.per_worker_processed, r.second_choices, r.migrations,
    );
    if r.wire {
        let malformed: u64 = r.malformed_per_stage.values().sum();
        let _ = writeln!(
            out,
            "            wire: {:.2} MiB in, {:.2} MiB out, goodput {:.3} Gbit/s, malformed {} ({} segs corrupted)",
            r.bytes_in as f64 / (1024.0 * 1024.0),
            r.bytes_out as f64 / (1024.0 * 1024.0),
            r.goodput_gbps,
            malformed,
            r.corrupted_segments,
        );
    }
    // The placement picture: which worker carried the bulk of each
    // stage. For a split run this is where the alloc and GRO halves
    // visibly land on distinct cores.
    if r.stages > 0 && !r.per_worker_stage_processed.is_empty() {
        let labels = falcon_dataplane::stage_labels(r.split_gro);
        let mut line = String::new();
        for (s, label) in labels.iter().enumerate().take(r.stages) {
            let (best_w, _) = r
                .per_worker_stage_processed
                .iter()
                .enumerate()
                .map(|(w, row)| (w, row.get(s).copied().unwrap_or(0)))
                .max_by_key(|&(_, n)| n)
                .unwrap_or((0, 0));
            let _ = write!(line, " {label}->w{best_w}");
        }
        let _ = writeln!(out, "            stage placement (busiest worker):{line}");
    }
    let _ = writeln!(
        out,
        "            ordering: {} checks, {} violations",
        r.order_checks, r.reorder_violations,
    );
    // Where the cycles went, summed over workers: this is the line that
    // explains a goodput gap (a falcon run is "fast" because its idle
    // and pop-stall shares shrink, not because busy work got cheaper).
    let wall: u64 = r.per_worker_stall.iter().map(|s| s.wall_ns).sum();
    if wall > 0 {
        let share = |n: u64| n as f64 / wall as f64 * 100.0;
        let _ = writeln!(
            out,
            "            stall attribution: busy {:.1}%  push {:.1}%  pop {:.1}%  guard {:.1}%  idle {:.1}%  (coverage min {:.4})",
            share(r.per_worker_stall.iter().map(|s| s.busy_ns).sum()),
            share(r.per_worker_stall.iter().map(|s| s.stall_push_ns).sum()),
            share(r.per_worker_stall.iter().map(|s| s.stall_pop_ns).sum()),
            share(r.per_worker_stall.iter().map(|s| s.guard_wait_ns).sum()),
            share(r.per_worker_stall.iter().map(|s| s.idle_ns).sum()),
            r.stall_coverage_min,
        );
    }
    if let Some(f) = &r.flow_cache {
        let _ = writeln!(
            out,
            "            flow-cache: hit rate {:.4} ({} hits / {} misses)  evictions {}  invalidations {}",
            f.hit_rate, f.hits, f.misses, f.evictions, f.invalidations,
        );
    }
    if let Some(c) = &r.conntrack {
        let _ = writeln!(
            out,
            "            conntrack: {} conn(s), {} pkts, {} updates ({} transitions, {} delta records)  states syn/est/fin/closed/rst {}/{}/{}/{}/{}",
            c.summary.entries,
            c.summary.pkts,
            c.updates,
            c.transitions,
            c.scr_delta_records,
            c.summary.syn_seen,
            c.summary.established,
            c.summary.fin_seen,
            c.summary.closed,
            c.summary.reset,
        );
    }
    if let Some(t) = &r.telemetry {
        let _ = writeln!(
            out,
            "            telemetry: {} samples @ {} ms  jsonl {} line(s)  scrapes {}  max depth staleness {}",
            t.samples, t.interval_ms, t.jsonl_lines, t.scrapes, t.max_depth_staleness,
        );
    }
}

/// Human-readable comparison summary.
pub fn render(cmp: &DataplaneComparison) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataplane: {} packets, {} flow(s), payload {} B ({}{}), {} worker(s) on {} host core(s)",
        cmp.packets,
        cmp.flows,
        cmp.payload,
        cmp.shape,
        if cmp.split_gro {
            ", split-gro: 5 stages"
        } else {
            ""
        },
        cmp.workers,
        cmp.host_cores,
    );
    render_report(&cmp.vanilla, &mut out);
    render_report(&cmp.falcon, &mut out);
    if let Some(r) = &cmp.replicate {
        render_report(r, &mut out);
    }
    let _ = writeln!(
        out,
        "  speedup   {:.2}x (falcon/vanilla throughput)",
        cmp.speedup
    );
    if let Some(s) = cmp.speedup_replicate {
        let _ = writeln!(out, "  speedup   {s:.2}x (replicate/vanilla throughput)");
    }
    if let Some(o) = &cmp.conntrack_oracle {
        let _ = writeln!(
            out,
            "  scr oracle: tables_equal {}  deliveries_equal {}  ({} conn(s), {} pkts)",
            o.tables_equal, o.deliveries_equal, o.entries, o.pkts,
        );
    }
    if let Some(o) = &cmp.telemetry_overhead {
        let _ = writeln!(
            out,
            "  telemetry overhead: on/off ratio {:.4} at {} ms interval ({:.3} vs {:.3} Gbit/s)",
            o.ratio, o.interval_ms, o.goodput_on_gbps, o.goodput_off_gbps,
        );
    }
    if let Some(f) = &cmp.flow_cache {
        let _ = writeln!(
            out,
            "  flow-cache ({} entries/worker): cached/uncached goodput ratio {:.4} ({:.3} vs {:.3} Gbit/s), hit rate {:.4}",
            f.entries, f.goodput_ratio, f.cached.goodput_gbps, cmp.falcon.goodput_gbps, f.hit_rate,
        );
        render_report(&f.cached, &mut out);
    }
    if cmp.host_cores < 4 {
        let _ = writeln!(
            out,
            "  note: only {} logical core(s) visible; pipelining cannot beat \
             serialization without cores to pipeline across (the paper's claim \
             is for >=4 cores{})",
            cmp.host_cores,
            if cmp.split_gro {
                ", and the 5-stage split wants a 5th"
            } else {
                ""
            },
        );
    }
    out
}

/// Runs the (1..=max_flows × 1..=max_workers) scaling grid, both
/// policies per point — the paper's Figure-12 aggregate-scaling story
/// on real threads.
///
/// Each point is a full [`run_comparison`]-equivalent pass at the given
/// scale, with the packet budget per point capped so a whole grid stays
/// tractable; worker counts above the host's cores are clamped by the
/// executor exactly as single runs are (the grid then repeats the
/// clamped column, which the JSON records honestly via each point's
/// `workers` field). `chaos_steer_period` is a test hook: nonzero runs
/// every point under forced-migration churn (and lifts the core clamp)
/// so the conformance suite can prove the order audit holds at every
/// grid cell under adversarial steering.
///
/// With `flow_cache` set (per-worker entries; wire mode only), every
/// point also runs a third, cached Falcon leg and records the
/// cached-vs-uncached pair in its comparison's `flow_cache` field.
///
/// With `replicate` set, every point also runs the SCR leg and records
/// it (plus the drop-free-wire differential oracle) in its
/// comparison — the single-heavy-flow column is where Replicate's
/// guard-free spraying visibly beats Falcon's per-flow serialization.
#[allow(clippy::too_many_arguments)]
pub fn run_sweep(
    scale: Scale,
    max_flows: u64,
    max_workers: usize,
    split_gro: bool,
    chaos_steer_period: u64,
    wire: bool,
    flow_cache: Option<usize>,
    replicate: bool,
) -> SweepReport {
    let max_flows = max_flows.max(1);
    let max_workers = max_workers.max(1);
    let mut points = Vec::new();
    let mut packets_per_point = 0;
    let mut shape = String::new();
    for flows in 1..=max_flows {
        for workers in 1..=max_workers {
            let mut scenario = scenario_for(scale, workers, flows, split_gro, wire);
            // A grid multiplies run count by flows × workers; cap the
            // per-point budget so a full sweep finishes in minutes.
            scenario.packets = scenario.packets.min(match scale {
                Scale::Quick => 3_000,
                Scale::Full => 20_000,
            });
            scenario.chaos_steer_period = chaos_steer_period;
            // The workers axis is the whole point of the sweep: keep it
            // honest on small hosts by oversubscribing instead of letting
            // the executor clamp every point down to the core count.
            scenario.oversubscribe = true;
            packets_per_point = scenario.packets;
            shape = scenario.shape.label();
            let vanilla_out = run_scenario(&scenario.clone().with_policy(PolicyKind::Vanilla));
            let vanilla = DataplaneReport::from_run(&vanilla_out);
            let falcon = DataplaneReport::from_run(&run_scenario(
                &scenario.clone().with_policy(PolicyKind::Falcon),
            ));
            let mut comparison = DataplaneComparison::new(&scenario, vanilla, falcon);
            if replicate {
                attach_replicate(&mut comparison, &scenario, &vanilla_out);
            }
            if let Some(entries) = flow_cache {
                // One cached run per point: a grid already multiplies
                // run count, so the sweep skips the best-of-3 noise
                // treatment single comparisons get.
                let mut cached_scenario = scenario.clone().with_policy(PolicyKind::Falcon);
                cached_scenario.flow_cache = true;
                cached_scenario.flow_cache_entries = entries;
                let cached = DataplaneReport::from_run(&run_scenario(&cached_scenario));
                comparison.flow_cache = Some(FlowCacheComparison::new(
                    entries,
                    &comparison.falcon,
                    cached,
                ));
            }
            points.push(SweepPoint {
                flows,
                workers: comparison.workers,
                comparison,
            });
        }
    }
    SweepReport {
        meta: falcon_dataplane::run_meta("sweep"),
        host_cores: falcon_dataplane::available_cores(),
        split_gro,
        shape,
        packets_per_point,
        max_flows,
        max_workers,
        points,
    }
}

/// Human-readable sweep table: one line per grid point.
pub fn render_sweep(sweep: &SweepReport) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dataplane sweep: {} packets/point, shape {}{}, grid {}x{} (flows x workers) on {} host core(s)",
        sweep.packets_per_point,
        sweep.shape,
        if sweep.split_gro { " split-gro" } else { "" },
        sweep.max_flows,
        sweep.max_workers,
        sweep.host_cores,
    );
    let _ = writeln!(
        out,
        "  {:>5} {:>7} | {:>12} {:>12} {:>8} | {:>10} {:>10} | {:>6}",
        "flows", "workers", "van pps", "fal pps", "speedup", "van p99us", "fal p99us", "viol"
    );
    for p in &sweep.points {
        let c = &p.comparison;
        let _ = write!(
            out,
            "  {:>5} {:>7} | {:>12.0} {:>12.0} {:>7.2}x | {:>10.1} {:>10.1} | {:>6}",
            p.flows,
            p.workers,
            c.vanilla.throughput_pps,
            c.falcon.throughput_pps,
            c.speedup,
            c.vanilla.latency.p99_ns as f64 / 1e3,
            c.falcon.latency.p99_ns as f64 / 1e3,
            c.vanilla.reorder_violations
                + c.falcon.reorder_violations
                + c.replicate.as_ref().map_or(0, |r| r.reorder_violations),
        );
        if let (Some(r), Some(s)) = (&c.replicate, c.speedup_replicate) {
            let _ = write!(out, " | repl {:>10.0} pps {s:>5.2}x", r.throughput_pps);
            if let Some(o) = &c.conntrack_oracle {
                let _ = write!(out, " oracle {}", if o.holds() { "ok" } else { "FAIL" });
            }
        }
        if let Some(f) = &c.flow_cache {
            let _ = write!(
                out,
                " | cache {:>5.2}x hit {:.3}",
                f.goodput_ratio, f.hit_rate
            );
        }
        let _ = writeln!(out);
    }
    let _ = writeln!(
        out,
        "  total reorder violations: {}",
        sweep.total_reorder_violations()
    );
    out
}

/// Runs a traced Falcon dataplane pass and returns Perfetto JSON.
///
/// Uses a reduced packet count so the trace stays loadable; the point
/// of the artifact is *seeing* the stages of one flow overlap on
/// different worker tracks, not volume.
pub fn chrome_trace(scale: Scale, workers: usize, flows: u64, split_gro: bool) -> String {
    let mut scenario =
        scenario_for(scale, workers, flows, split_gro, false).with_policy(PolicyKind::Falcon);
    scenario.packets = scenario.packets.min(3_000);
    scenario.trace_capacity = 64 * 1024;
    // A traced run also carries telemetry: the sampler's snapshots
    // become Perfetto counter tracks (ring depth, stall shares) drawn
    // above the per-worker slice tracks. A short interval keeps the
    // counters dense enough to see on a run this brief.
    scenario.telemetry = Some(TelemetrySpec {
        interval_ms: 5,
        jsonl_path: None,
        prom_addr: None,
        prom_addr_tx: None,
    });
    let out = run_scenario(&scenario);
    let tracks = out
        .telemetry
        .as_ref()
        .map(|run| falcon_telemetry::counter_tracks(&run.samples))
        .unwrap_or_default();
    chrome::export_with_counters(&out.merged_events(), &out.meta, &tracks)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_comparison_is_sound() {
        let cmp = run_comparison(Scale::Quick, 2, 1, false, false);
        assert_eq!(
            cmp.vanilla.delivered + cmp.vanilla.dropped,
            cmp.vanilla.injected
        );
        assert_eq!(
            cmp.falcon.delivered + cmp.falcon.dropped,
            cmp.falcon.injected
        );
        assert_eq!(cmp.vanilla.reorder_violations, 0);
        assert_eq!(cmp.falcon.reorder_violations, 0);
        let text = render(&cmp);
        assert!(text.contains("speedup"));
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"falcon\""));
    }

    #[test]
    fn quick_wire_comparison_carries_bytes() {
        let cmp = run_comparison(Scale::Quick, 2, 2, false, true);
        for r in [&cmp.vanilla, &cmp.falcon] {
            assert!(r.wire);
            assert_eq!(r.delivered + r.dropped, r.injected);
            assert!(r.bytes_in > 0, "wire bytes were injected");
            assert_eq!(r.bytes_out, r.delivered * 64, "64 B payload per packet");
            assert!(r.goodput_gbps > 0.0);
            assert_eq!(r.corrupted_segments, 0);
            assert_eq!(r.malformed_per_stage.values().sum::<u64>(), 0);
            assert_eq!(r.reorder_violations, 0);
        }
        let text = render(&cmp);
        assert!(text.contains("goodput"), "wire line rendered: {text}");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"goodput_gbps\""));
    }

    #[test]
    fn quick_split_comparison_runs_five_stages() {
        let cmp = run_comparison(Scale::Quick, 2, 1, true, false);
        assert!(cmp.split_gro);
        assert_eq!(cmp.vanilla.stages, 5);
        assert_eq!(cmp.falcon.stages, 5);
        assert_eq!(
            cmp.falcon.delivered + cmp.falcon.dropped,
            cmp.falcon.injected
        );
        assert_eq!(cmp.falcon.reorder_violations, 0);
        let text = render(&cmp);
        assert!(text.contains("split-gro: 5 stages"));
        assert!(text.contains("pnic_gro"), "placement line names the half");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"pnic_gro\""));
    }

    #[test]
    fn quick_telemetry_comparison_records_overhead_and_meta() {
        let cmp = run_comparison_with(
            Scale::Quick,
            2,
            1,
            false,
            true,
            Some(TelemetrySpec {
                interval_ms: 2,
                jsonl_path: None,
                prom_addr: None,
                prom_addr_tx: None,
            }),
            None,
            false,
        );
        // Provenance stamp rides on every comparison artifact.
        assert_eq!(cmp.meta.schema_version, 1);
        assert_eq!(cmp.meta.artifact, "wire");
        assert!(!cmp.meta.created_utc.is_empty());
        // The falcon leg carried the sampler; vanilla stayed bare.
        let t = cmp.falcon.telemetry.as_ref().expect("telemetry summary");
        assert!(t.samples >= 1);
        assert_eq!(t.interval_ms, 2);
        assert!(cmp.vanilla.telemetry.is_none());
        // The third (telemetry-off) pass produced the overhead record.
        let o = cmp.telemetry_overhead.as_ref().expect("overhead measured");
        assert_eq!(o.interval_ms, 2);
        assert!(o.ratio > 0.0 && o.ratio.is_finite());
        assert!(o.goodput_on_gbps > 0.0);
        assert!(o.goodput_off_gbps > 0.0);
        let text = render(&cmp);
        assert!(text.contains("telemetry overhead"), "{text}");
        assert!(text.contains("stall attribution"), "{text}");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"telemetry_overhead\""));
        assert!(json.contains("\"schema_version\""));
        assert!(json.contains("\"stall_coverage_min\""));
    }

    #[test]
    fn quick_flow_cache_comparison_records_both_legs() {
        let cmp = run_comparison_with(Scale::Quick, 2, 2, false, true, None, Some(1024), false);
        let f = cmp.flow_cache.as_ref().expect("cached leg recorded");
        assert_eq!(f.entries, 1024);
        assert!(f.cached.wire);
        assert_eq!(f.cached.delivered + f.cached.dropped, f.cached.injected);
        assert_eq!(f.cached.reorder_violations, 0);
        let fc = f.cached.flow_cache.as_ref().expect("cache counters");
        assert!(fc.hits > 0);
        assert!(
            f.hit_rate >= 0.9,
            "steady-flow hit rate must clear 0.9, got {}",
            f.hit_rate
        );
        assert!(f.goodput_ratio > 0.0 && f.goodput_ratio.is_finite());
        // The uncached legs never carry cache counters.
        assert!(cmp.falcon.flow_cache.is_none());
        assert!(cmp.vanilla.flow_cache.is_none());
        let text = render(&cmp);
        assert!(text.contains("flow-cache"), "{text}");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"flow_cache\""));
        assert!(json.contains("\"hit_rate\""));
        assert!(json.contains("\"goodput_ratio\""));
    }

    #[test]
    fn quick_replicate_comparison_carries_oracle() {
        let cmp = run_comparison_with(Scale::Quick, 2, 1, false, true, None, None, true);
        let r = cmp.replicate.as_ref().expect("replicate leg recorded");
        assert!(r.wire);
        assert_eq!(r.policy, "replicate");
        assert_eq!(r.delivered + r.dropped, r.injected);
        assert_eq!(r.reorder_violations, 0, "replicate leg ran a packet twice");
        let ct = r.conntrack.as_ref().expect("conntrack report on wire run");
        assert!(ct.updates > 0);
        assert!(cmp.speedup_replicate.expect("speedup computed") > 0.0);
        if cmp.vanilla.dropped == 0 && r.dropped == 0 {
            let o = cmp.conntrack_oracle.as_ref().expect("drop-free oracle");
            assert!(o.tables_equal, "SCR merge diverged from ground truth");
            assert!(o.deliveries_equal, "delivery multisets diverged");
        }
        let text = render(&cmp);
        assert!(text.contains("replicate"), "{text}");
        assert!(text.contains("conntrack"), "{text}");
        let json = serde_json::to_string(&cmp).expect("serializes");
        assert!(json.contains("\"speedup_replicate\""));
        assert!(json.contains("\"conntrack\""));
    }

    #[test]
    fn tiny_sweep_covers_the_grid() {
        let sweep = run_sweep(Scale::Quick, 2, 1, false, 0, false, None, false);
        assert_eq!(sweep.points.len(), 2, "2 flows x 1 worker");
        assert_eq!(sweep.total_reorder_violations(), 0);
        for p in &sweep.points {
            assert_eq!(
                p.comparison.falcon.delivered + p.comparison.falcon.dropped,
                p.comparison.falcon.injected
            );
            assert_eq!(p.workers, p.comparison.workers);
        }
        let text = render_sweep(&sweep);
        assert!(text.contains("speedup"));
        assert!(text.contains("total reorder violations: 0"));
        let json = serde_json::to_string(&sweep).expect("serializes");
        assert!(json.contains("\"points\""));
    }

    #[test]
    fn dataplane_trace_exports_perfetto_json() {
        let json = chrome_trace(Scale::Quick, 2, 1, false);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("pnic_poll"), "stage slices present");
    }

    #[test]
    fn split_trace_exports_the_gro_half() {
        let json = chrome_trace(Scale::Quick, 2, 1, true);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("pnic_gro"), "gro half slices present");
    }
}

//! One representative benchmark per paper figure.
//!
//! Each bench exercises the figure's workload generator and scenario at
//! a single representative operating point (the full parameter sweeps
//! live in `falcon-repro`, which regenerates the complete tables).
//! Regressions here mean a figure's underlying machinery changed
//! weight.

use criterion::{criterion_group, criterion_main, Criterion};
use falcon::FalconConfig;
use falcon_bench::measure_single_flow_udp;
use falcon_cpusim::CpuSet;
use falcon_experiments::measure::{run_measured, Scale};
use falcon_experiments::scenario::{Mode, Scenario, MF_APP_CORES, SF_APP_CORE};
use falcon_netdev::{LinkSpeed, NicConfig};
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{
    DataCaching, DataCachingConfig, TcpStreams, TcpStreamsConfig, UdpPingPong, UdpStressApp,
    UdpStressConfig, WebServing, WebServingConfig,
};

fn bench_motivation(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_motivation");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    // fig2/fig10 cell: overlay UDP stress at a fixed rate.
    g.bench_function("fig02_overlay_udp_cell", |b| {
        b.iter(|| measure_single_flow_udp(Mode::Vanilla, 200_000.0, 16))
    });
    // fig4/fig5/fig11/fig19 cell: interrupt + CPU accounting run.
    g.bench_function("fig04_irq_accounting_cell", |b| {
        b.iter(|| measure_single_flow_udp(Mode::Host, 150_000.0, 16))
    });
    // fig2d/fig12a cell: ping-pong latency.
    g.bench_function("fig12_pingpong_cell", |b| {
        b.iter(|| {
            let scenario =
                Scenario::single_flow(Mode::Vanilla, KernelVersion::K419, LinkSpeed::HundredGbit);
            let mut app = UdpPingPong::new(64);
            app.app_cores = vec![SF_APP_CORE];
            let mut runner = scenario.build(Box::new(app));
            run_measured(&mut runner, Scale::Quick)
        })
    });
    g.finish();
}

fn bench_falcon_mechanisms(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_falcon");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    // fig10/fig11 cell: falcon pipelining under stress.
    g.bench_function("fig10_falcon_udp_cell", |b| {
        b.iter(|| measure_single_flow_udp(Mode::Falcon(Scenario::sf_falcon()), 300_000.0, 16))
    });
    // fig9a/fig13 cell: TCP with GRO splitting.
    g.bench_function("fig13_tcp_split_cell", |b| {
        b.iter(|| {
            let cfg = FalconConfig::new(CpuSet::range(1, 5)).with_split_gro(true);
            let scenario = Scenario::single_flow(
                Mode::Falcon(cfg),
                KernelVersion::K419,
                LinkSpeed::HundredGbit,
            );
            let mut wl = TcpStreamsConfig::single(4096);
            wl.app_cores = vec![SF_APP_CORE];
            let mut runner = scenario.build(Box::new(TcpStreams::new(wl)));
            run_measured(&mut runner, Scale::Quick)
        })
    });
    // fig14/fig15/fig16 cell: multi-container balancing.
    g.bench_function("fig14_multicontainer_cell", |b| {
        b.iter(|| {
            let scenario = Scenario::multi_flow(
                Mode::Falcon(Scenario::mf_falcon()),
                KernelVersion::K419,
                LinkSpeed::HundredGbit,
            );
            let mut cfg = UdpStressConfig::multi_flow(6, 512);
            cfg.pacing = Pacing::PoissonPps(120_000.0);
            cfg.senders_per_flow = 1;
            cfg.app_cores = MF_APP_CORES.to_vec();
            let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
            run_measured(&mut runner, Scale::Quick)
        })
    });
    g.finish();
}

fn bench_applications(c: &mut Criterion) {
    let mut g = c.benchmark_group("figures_applications");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    // fig17 cell: web serving.
    g.bench_function("fig17_web_serving_cell", |b| {
        b.iter(|| {
            let scenario = Scenario::multi_flow(
                Mode::Falcon(FalconConfig::new(CpuSet::range(1, 11))),
                KernelVersion::K419,
                LinkSpeed::HundredGbit,
            )
            .tweak(|stack| {
                stack.n_cores = 12;
                stack.nic = NicConfig::single_queue(1024);
                stack.rps = Some(CpuSet::range(1, 7));
            });
            let (app, _stats) = WebServing::new(WebServingConfig::new(50));
            let mut runner = scenario.build(Box::new(app));
            runner.run_for(falcon_simcore::SimDuration::from_millis(15));
        })
    });
    // fig18 cell: data caching.
    g.bench_function("fig18_memcached_cell", |b| {
        b.iter(|| {
            let scenario = Scenario::multi_flow(
                Mode::Falcon(Scenario::mf_falcon()),
                KernelVersion::K419,
                LinkSpeed::HundredGbit,
            )
            .tweak(|stack| {
                stack.nic = NicConfig::multi_queue(4, 1024, 4);
                stack.rps = Some(CpuSet::range(0, 6));
            });
            let mut dc = DataCachingConfig::open_loop(4, 10_000.0);
            dc.app_cores = vec![8, 9, 10, 11, 12, 13];
            let mut runner = scenario.build(Box::new(DataCaching::new(dc)));
            run_measured(&mut runner, Scale::Quick)
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_motivation,
    bench_falcon_mechanisms,
    bench_applications
);
criterion_main!(benches);

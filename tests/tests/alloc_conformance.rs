//! Allocation conformance for the wire-mode hot path.
//!
//! The slab pool's whole reason to exist is that the steady-state
//! packet path — build frame in a pooled slot, inject, run every
//! stage, deliver, recycle — touches the allocator **zero** times per
//! packet. Claims like that rot silently, so this harness wraps the
//! global allocator in a counting shim and measures the real pipeline:
//! after a warmup lap primes the pool, the flow tables, and every
//! preallocated log, a measured batch of packets must drive the
//! process-wide allocation count up by exactly zero.
//!
//! The same harness proves the fallback story: a deliberately starved
//! pool (a handful of slots against thousands of in-flight packets)
//! must keep the run correct while counting its heap fallbacks
//! honestly.
//!
//! Both legs live in ONE `#[test]` — the measurement window spans
//! every thread in the process, so nothing else may run concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use falcon_dataplane::{
    rss_hash_for_flow, run_scenario, run_scenario_from, Injector, PolicyKind, Scenario,
};
use falcon_packet::{PktDesc, SlabConfig, SlabPool};
use falcon_wire::{FrameFactory, SlabFrameBuilder};

/// Counts every allocator entry point; frees are irrelevant to the
/// zero-alloc claim (recycling *releases* memory, it must not acquire
/// any).
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

// SAFETY: pure pass-through to `System` plus a relaxed counter bump.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

const FLOWS: u64 = 4;
const PAYLOAD: usize = 512;
const WARMUP: u64 = 6_000;
const MEASURED: u64 = 2_000;

fn wire_scenario(packets: u64) -> Scenario {
    Scenario {
        policy: PolicyKind::Vanilla,
        workers: 2,
        flows: FLOWS,
        packets,
        payload: PAYLOAD,
        work_scale_milli: 100,
        inject_gap_ns: 0,
        pin: false,
        oversubscribe: true,
        // Tracing off: the trace ring is preallocated anyway, but the
        // measured window should exercise exactly the shipping path.
        trace_capacity: 0,
        wire: true,
        ..Scenario::default()
    }
}

fn build_and_inject(
    inj: &mut Injector,
    pool: &mut SlabPool,
    builder: &mut SlabFrameBuilder,
    seqs: &mut [u64],
    i: u64,
) {
    let flow = i % FLOWS;
    let seq = seqs[flow as usize];
    seqs[flow as usize] += 1;
    let wire = builder.udp_wire(pool, flow, seq, PAYLOAD);
    let desc = PktDesc::new(i, flow, seq, rss_hash_for_flow(flow), PAYLOAD as u32).with_wire(wire);
    inj.inject(desc);
}

/// Leg 1: after warmup, a measured batch of UDP wire packets through
/// the full two-worker pipeline performs zero allocations anywhere in
/// the process. Leg 2: a starved pool falls back to the heap, counts
/// every fallback, and the run still completes correctly.
#[test]
fn wire_steady_state_allocates_nothing_and_exhaustion_is_counted() {
    // ---- Leg 1: steady state is alloc-free. -------------------------
    let scenario = wire_scenario(WARMUP + MEASURED);
    let (out, (delta, fallbacks_live)) = run_scenario_from(&scenario, move |inj| {
        // Plenty of headroom over ring capacity so exhaustion can't
        // sneak a fallback allocation into the measured window.
        let cfg = SlabConfig {
            mtu_slots: 4096,
            ..SlabConfig::default()
        };
        let mut pool = SlabPool::new(cfg);
        let counters = pool.counters();
        inj.attach_slab_counters(pool.counters());
        let mut builder = SlabFrameBuilder::new(FrameFactory::default());
        let mut seqs = vec![0u64; FLOWS as usize];

        for i in 0..WARMUP {
            build_and_inject(inj, &mut pool, &mut builder, &mut seqs, i);
        }
        // Quiesce so the measured window starts from an idle pipeline
        // with every recycled buffer back on the freelists.
        inj.wait_quiesced();
        pool.drain_returns();

        let before = ALLOCS.load(Ordering::SeqCst);
        for i in WARMUP..WARMUP + MEASURED {
            build_and_inject(inj, &mut pool, &mut builder, &mut seqs, i);
        }
        inj.wait_quiesced();
        pool.drain_returns();
        let after = ALLOCS.load(Ordering::SeqCst);

        (after - before, counters.snapshot().fallbacks)
    });
    assert_eq!(
        out.delivered(),
        WARMUP + MEASURED,
        "alloc run must deliver everything (drops would skew the count)"
    );
    assert_eq!(
        fallbacks_live, 0,
        "steady-state leg must never fall back to the heap"
    );
    assert_eq!(
        delta, 0,
        "steady-state wire path allocated {delta} times over {MEASURED} packets"
    );

    // ---- Leg 2: exhaustion falls back, visibly. ---------------------
    let mut starved = wire_scenario(3_000);
    starved.slab_slots = 8;
    let out = run_scenario(&starved);
    assert_eq!(out.delivered(), 3_000, "starved run still delivers");
    let slab = out.slab.expect("wire run reports slab counters");
    assert!(slab.leases > 0, "starved pool still leases its 8 slots");
    assert!(
        slab.fallbacks > 0,
        "8 slots against 3000 packets must overflow to the heap"
    );
}

//! Property-based invariants of the full simulation, spanning every
//! crate: conservation, ordering, determinism, and robustness across
//! randomized configurations.

use falcon_experiments::scenario::Mode;
use falcon_integration_tests::{falcon_mode, small_udp_runner};
use falcon_simcore::SimDuration;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Conservation: every sent datagram is delivered, dropped, or
    /// still in flight — none invented, none silently lost.
    #[test]
    fn conservation_holds(
        rate in 50_000.0f64..400_000.0,
        payload in prop::sample::select(vec![16usize, 256, 1024, 4000]),
        seed in 0u64..1000,
        falcon_on in any::<bool>(),
    ) {
        let mode = if falcon_on { falcon_mode() } else { Mode::Vanilla };
        let mut runner = small_udp_runner(mode, rate, payload, seed);
        runner.run_for(SimDuration::from_millis(8));
        let c = runner.counters();
        let m = runner.machine();

        // Frames: sent = ring drops + accepted; accounted per datagram
        // below via the delivered/dropped/in-flight split.
        let sent = c.total_sent();
        let delivered = c.total_delivered();
        prop_assert!(delivered <= sent, "delivered {delivered} > sent {sent}");

        // Every non-delivered datagram must be explained by a drop or
        // by bytes still queued somewhere in the pipeline.
        let unexplained = sent - delivered;
        let drops = c.total_drops();
        let in_flight_possible = !m.quiescent()
            || m.nic.ring_len(0) > 0
            || !m.defrag.is_empty();
        prop_assert!(
            unexplained <= drops + 4_000 || in_flight_possible,
            "unexplained loss: sent {sent}, delivered {delivered}, drops {drops}"
        );
    }

    /// In-order delivery per (flow, device) holds for the vanilla
    /// overlay under every load (it never migrates stages).
    #[test]
    fn vanilla_never_reorders(
        rate in 50_000.0f64..600_000.0,
        seed in 0u64..1000,
    ) {
        let mut runner = small_udp_runner(Mode::Vanilla, rate, 16, seed);
        runner.run_for(SimDuration::from_millis(8));
        prop_assert_eq!(runner.machine().order.violations(), 0);
    }

    /// Falcon's reordering (hotspot-escape migrations only) stays
    /// negligible relative to traffic.
    #[test]
    fn falcon_reordering_negligible(
        rate in 50_000.0f64..600_000.0,
        seed in 0u64..1000,
    ) {
        let mut runner = small_udp_runner(falcon_mode(), rate, 16, seed);
        runner.run_for(SimDuration::from_millis(8));
        let violations = runner.machine().order.violations();
        let delivered = runner.counters().total_delivered().max(1);
        prop_assert!(
            (violations as f64) < (delivered as f64) * 0.01 + 2.0,
            "violations {violations} vs delivered {delivered}"
        );
    }

    /// Determinism: identical configuration and seed give bit-identical
    /// results.
    #[test]
    fn runs_are_reproducible(
        rate in 50_000.0f64..300_000.0,
        seed in 0u64..1000,
        falcon_on in any::<bool>(),
    ) {
        let mode = if falcon_on { falcon_mode() } else { Mode::Host };
        let run = |seed| {
            let mut runner = small_udp_runner(mode.clone(), rate, 64, seed);
            runner.run_for(SimDuration::from_millis(5));
            (
                runner.counters().total_delivered(),
                runner.counters().frames_sent,
                runner.machine().cores.ledger.total_busy(),
                runner.engine.events_executed(),
            )
        };
        prop_assert_eq!(run(seed), run(seed));
    }

    /// Latency samples are physically sensible: at least the wire
    /// propagation, below the run length.
    #[test]
    fn latency_bounds(
        rate in 50_000.0f64..200_000.0,
        seed in 0u64..100,
    ) {
        let mut runner = small_udp_runner(Mode::Vanilla, rate, 16, seed);
        runner.run_for(SimDuration::from_millis(8));
        let lat = &runner.counters().latency;
        if lat.count() > 0 {
            prop_assert!(lat.min() >= 500, "below propagation delay: {}", lat.min());
            prop_assert!(lat.max() < 8_000_000, "beyond run length: {}", lat.max());
        }
    }
}

/// The steering policies must map flows only onto configured CPUs: run
/// Falcon and confirm every softirq landed inside FALCON_CPUS ∪ RPS ∪
/// the IRQ core.
#[test]
fn softirqs_stay_on_configured_cores() {
    let mut runner = small_udp_runner(falcon_mode(), 300_000.0, 16, 7);
    runner.run_for(SimDuration::from_millis(10));
    let ledger = &runner.machine().cores.ledger;
    // Cores 0-4 may run softirqs (IRQ core + RPS/FALCON 1-4); the app
    // core 5 and spares 6-7 must not.
    for core in 5..8 {
        assert_eq!(
            ledger.core(core).softirq_ns,
            0,
            "softirq leaked onto unconfigured core {core}"
        );
    }
}

/// Cross-crate agreement: the NIC's RSS queue choice is reproducible
/// from the packet bytes alone via the khash primitives.
#[test]
fn rss_choice_matches_khash() {
    use falcon_khash::{toeplitz_hash, MICROSOFT_RSS_KEY};
    use falcon_netdev::{NicConfig, PhysNic};
    use falcon_packet::{build_udp_frame, dissect_flow, MacAddr};

    let nic = PhysNic::new(NicConfig::multi_queue(8, 64, 8));
    for port in 0..64u16 {
        let keys = falcon_khash::FlowKeys::udp(0x0A00_0001, 10_000 + port, 0x0A00_0002, 5001);
        let frame = build_udp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &keys,
            &[0; 16],
        );
        let dissected = dissect_flow(&frame).expect("frame parses");
        assert_eq!(dissected, keys, "dissection round-trips the tuple");
        let input = falcon_khash::toeplitz::rss_input_v4(
            keys.src_addr,
            keys.dst_addr,
            keys.src_port,
            keys.dst_port,
        );
        let expected = toeplitz_hash(&MICROSOFT_RSS_KEY, &input) as usize % 8;
        assert_eq!(nic.select_queue(&dissected), expected);
    }
}

//! Property-based tests of the packet codecs: every header round-trips
//! through bytes; encapsulation always inverts.

use falcon_khash::FlowKeys;
use falcon_packet::{
    build_tcp_frame, build_udp_frame, dissect_flow, vxlan_decapsulate, vxlan_encapsulate,
    EncapParams, EtherType, EthernetHdr, IpProto, Ipv4Addr4, Ipv4Hdr, MacAddr, TcpFlags, TcpHdr,
    UdpHdr, VxlanHdr,
};
use proptest::prelude::*;

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

proptest! {
    #[test]
    fn ethernet_round_trip(dst in arb_mac(), src in arb_mac(), ethertype in any::<u16>()) {
        let hdr = EthernetHdr { dst, src, ethertype: EtherType::from_u16(ethertype) };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        prop_assert_eq!(EthernetHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn ipv4_round_trip(
        total_len in 20u16..=u16::MAX,
        ident in any::<u16>(),
        ttl in any::<u8>(),
        proto in any::<u8>(),
        src in any::<u32>(),
        dst in any::<u32>(),
    ) {
        let hdr = Ipv4Hdr {
            total_len,
            ident,
            ttl,
            proto: IpProto::from_u8(proto),
            src: Ipv4Addr4(src),
            dst: Ipv4Addr4(dst),
        };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        prop_assert_eq!(Ipv4Hdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn ipv4_detects_any_single_bit_flip(
        src in any::<u32>(),
        dst in any::<u32>(),
        byte in 0usize..20,
        bit in 0u8..8,
    ) {
        let hdr = Ipv4Hdr {
            total_len: 100,
            ident: 7,
            ttl: 64,
            proto: IpProto::Udp,
            src: Ipv4Addr4(src),
            dst: Ipv4Addr4(dst),
        };
        let mut buf = vec![0u8; 20];
        hdr.write(&mut buf);
        buf[byte] ^= 1 << bit;
        // Either the checksum rejects it, or (if the flip hit version/
        // IHL) the structural checks do. It must never parse as the
        // original header.
        if let Ok(parsed) = Ipv4Hdr::parse(&buf) { prop_assert_ne!(parsed, hdr) }
    }

    #[test]
    fn udp_round_trip(sport in any::<u16>(), dport in any::<u16>(), len in 8u16..=u16::MAX, csum in any::<u16>()) {
        let hdr = UdpHdr { src_port: sport, dst_port: dport, len, checksum: csum };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        prop_assert_eq!(UdpHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn tcp_round_trip(
        sport in any::<u16>(), dport in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        flags in 0u8..32, window in any::<u16>(),
    ) {
        let hdr = TcpHdr {
            src_port: sport,
            dst_port: dport,
            seq,
            ack,
            flags: TcpFlags::from_bits(flags),
            window,
        };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        prop_assert_eq!(TcpHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn vxlan_round_trip(vni in 0u32..(1 << 24)) {
        let hdr = VxlanHdr::new(vni);
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        prop_assert_eq!(VxlanHdr::parse(&buf).unwrap(), hdr);
    }

    /// Encapsulation always inverts, for any payload and flow.
    #[test]
    fn encap_decap_inverts(
        payload in prop::collection::vec(any::<u8>(), 0..2000),
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        outer_sport in any::<u16>(),
        vni in 0u32..(1 << 24),
    ) {
        let keys = FlowKeys::udp(src, sport, dst, dport);
        let inner = build_udp_frame(MacAddr::from_index(1), MacAddr::from_index(2), &keys, &payload);
        let params = EncapParams {
            src_mac: MacAddr::from_index(3),
            dst_mac: MacAddr::from_index(4),
            src_ip: Ipv4Addr4::new(192, 168, 0, 1),
            dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
            src_port: outer_sport,
            vni,
        };
        let outer = vxlan_encapsulate(&inner, &params);
        let (decapped, got_vni) = vxlan_decapsulate(&outer).unwrap();
        prop_assert_eq!(decapped, &inner[..]);
        prop_assert_eq!(got_vni, vni);
        // The inner flow keys survive the round trip.
        prop_assert_eq!(dissect_flow(decapped).unwrap(), keys);
    }

    /// Dissection agrees with construction for TCP frames too.
    #[test]
    fn tcp_frame_dissects(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        seq in any::<u32>(),
        payload_len in 0usize..1500,
    ) {
        let keys = FlowKeys::tcp(src, sport, dst, dport);
        let frame = build_tcp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &keys,
            seq,
            0,
            TcpFlags::data(),
            1024,
            &vec![0u8; payload_len],
        );
        prop_assert_eq!(dissect_flow(&frame).unwrap(), keys);
    }

    /// The parser never panics on arbitrary bytes.
    #[test]
    fn dissect_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let _ = dissect_flow(&bytes);
        let _ = vxlan_decapsulate(&bytes);
        let _ = EthernetHdr::parse(&bytes);
        let _ = Ipv4Hdr::parse(&bytes);
        let _ = UdpHdr::parse(&bytes);
        let _ = TcpHdr::parse(&bytes);
        let _ = VxlanHdr::parse(&bytes);
    }
}

//! `falcon-bench`: machine-readable benchmark reports.
//!
//! The criterion benches under `benches/` are for interactive tuning;
//! this binary is for CI and scripts. It runs the representative
//! single-flow UDP simulation under Host / Con / Falcon and emits the
//! summary as JSON, and (with `--dataplane`) runs the real-thread
//! executor comparison and writes `BENCH_dataplane.json`.
//!
//! ```text
//! falcon-bench --json                          # simulation summary to stdout
//! falcon-bench --out BENCH_simulation.json     # ... to a file
//! falcon-bench --dataplane                     # also write BENCH_dataplane.json
//! falcon-bench --quick --dataplane             # CI-sized everything
//! ```

use std::process::ExitCode;

use falcon_bench::measure_single_flow_udp;
use falcon_experiments::dataplane;
use falcon_experiments::ingest;
use falcon_experiments::measure::{RunStats, Scale};
use falcon_experiments::scenario::{Mode, Scenario};
use serde::Serialize;

/// One simulated mode's benchmark summary.
#[derive(Debug, Serialize)]
struct SimBenchEntry {
    /// Mode label ("host", "con", "falcon").
    mode: String,
    /// Offered load, packets per second.
    offered_pps: f64,
    /// Messages delivered in the measured window.
    delivered: u64,
    /// Drops in the measured window.
    drops: u64,
    /// Delivered packets per (simulated) second.
    pps: f64,
    /// Delivered payload Gbit/s.
    gbps: f64,
    /// One-way latency median, ns.
    latency_p50_ns: u64,
    /// One-way latency 99th percentile, ns.
    latency_p99_ns: u64,
    /// Machine busy share, core-units.
    busy_cores: f64,
}

impl SimBenchEntry {
    fn new(mode: &str, offered_pps: f64, stats: &RunStats) -> Self {
        SimBenchEntry {
            mode: mode.to_string(),
            offered_pps,
            delivered: stats.delivered,
            drops: stats.drops,
            pps: stats.pps(),
            gbps: stats.gbps(),
            latency_p50_ns: stats.latency.percentile(50.0),
            latency_p99_ns: stats.latency.percentile(99.0),
            busy_cores: stats.total_busy_cores(),
        }
    }
}

/// The whole simulation benchmark report.
#[derive(Debug, Serialize)]
struct SimBenchReport {
    /// Workload description.
    workload: String,
    /// UDP payload bytes.
    payload: usize,
    /// Per-mode results.
    results: Vec<SimBenchEntry>,
}

fn simulation_report(rate: f64, payload: usize) -> SimBenchReport {
    let modes = [
        ("host", Mode::Host),
        ("con", Mode::Vanilla),
        ("falcon", Mode::Falcon(Scenario::sf_falcon())),
    ];
    let results = modes
        .into_iter()
        .map(|(label, mode)| {
            let stats = measure_single_flow_udp(mode, rate, payload);
            SimBenchEntry::new(label, rate, &stats)
        })
        .collect();
    SimBenchReport {
        workload: format!("single-flow UDP, fixed {rate:.0} pps"),
        payload,
        results,
    }
}

fn usage() {
    eprintln!(
        "usage: falcon-bench [--json] [--quick] [--out <path>] [--dataplane] \
         [--wire] [--split-gro] [--dataplane-out <path>] [--workers <n>] \
         [--flows <n>] [--policy <vanilla|falcon|replicate>] \
         [--flow-cache] [--flow-cache-entries <n>] \
         [--sweep] [--sweep-out <path>] [--telemetry] \
         [--telemetry-interval-ms <n>] [--telemetry-out <path>] \
         [--prom-addr <ip:port>] [--ingest] [--ingest-out <path>] \
         [--rx-batch <n>]\n\
         default prints a text summary of the simulation benches; --json \
         prints JSON; --dataplane additionally runs the real-thread executor \
         comparison and writes it to --dataplane-out (default \
         BENCH_dataplane.json); --wire carries real VXLAN-encapsulated \
         bytes through the stages and switches the default comparison \
         output to BENCH_wire.json (bytes in/out and goodput appear in \
         the report); --sweep runs the real-thread scaling grid \
         (1..=--flows x 1..=--workers, both policies per point) and writes \
         it to --sweep-out (default BENCH_sweep.json), failing if the order \
         audit flags any point; --telemetry attaches the live sampler to \
         the --dataplane falcon run, streams per-interval deltas to \
         --telemetry-out (default BENCH_telemetry.jsonl), serves Prometheus \
         text on --prom-addr if given, and records telemetry-on vs -off \
         goodput in the comparison's telemetry_overhead field; \
         --prom-addr with port 0 binds ephemerally and prints the bound \
         address when the listener is up; --ingest sends real VXLAN \
         datagrams over a loopback UDP socket into the pipeline \
         (batched recvmmsg rx thread, differential oracle with explicit \
         loss accounting) and writes the vanilla-vs-falcon comparison \
         to --ingest-out (default BENCH_ingest.json); --rx-batch sets \
         its datagrams per batched read; --flow-cache adds a cached leg \
         to the --wire comparison and sweep (per-worker flow-verdict \
         cache, hit/miss/eviction/invalidation counters and the \
         cached-vs-uncached goodput ratio land in the artifact); \
         --flow-cache-entries sets its per-worker capacity (default \
         4096, implies --flow-cache); --policy replicate adds the SCR \
         leg (per-flow round-robin spraying with per-worker replicated \
         conntrack shards, plus the state-convergence differential \
         oracle on drop-free wire runs) to the --dataplane comparison \
         and the --sweep grid; vanilla and falcon always run, so \
         naming either is a no-op"
    );
}

fn main() -> ExitCode {
    let mut json = false;
    let mut scale = Scale::Full;
    let mut out: Option<String> = None;
    let mut run_dataplane = false;
    let mut wire = false;
    let mut split_gro = false;
    let mut dataplane_out: Option<String> = None;
    let mut workers: usize = 4;
    let mut flows: u64 = 1;
    let mut flow_cache = false;
    let mut flow_cache_entries: usize = 4096;
    let mut replicate = false;
    let mut run_sweep = false;
    let mut sweep_out = "BENCH_sweep.json".to_string();
    let mut telemetry = false;
    let mut telemetry_interval_ms: u64 = 0;
    let mut telemetry_out = "BENCH_telemetry.jsonl".to_string();
    let mut prom_addr: Option<String> = None;
    let mut run_ingest = false;
    let mut ingest_out = "BENCH_ingest.json".to_string();
    let mut rx_batch: usize = 32;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--quick" | "-q" => scale = Scale::Quick,
            "--out" => match args.next() {
                Some(path) => out = Some(path),
                None => {
                    eprintln!("--out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--dataplane" => run_dataplane = true,
            "--wire" => wire = true,
            "--split-gro" => split_gro = true,
            "--dataplane-out" => match args.next() {
                Some(path) => dataplane_out = Some(path),
                None => {
                    eprintln!("--dataplane-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => workers = n,
                _ => {
                    eprintln!("--workers requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--flows" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => flows = n,
                _ => {
                    eprintln!("--flows requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--policy" => match args
                .next()
                .as_deref()
                .and_then(falcon_dataplane::PolicyKind::from_label)
            {
                Some(falcon_dataplane::PolicyKind::Replicate) => replicate = true,
                // Vanilla and falcon always run as the comparison's
                // two standing legs.
                Some(_) => {}
                None => {
                    eprintln!("--policy requires vanilla, falcon, or replicate");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--flow-cache" => flow_cache = true,
            "--flow-cache-entries" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => {
                    flow_cache = true;
                    flow_cache_entries = n;
                }
                _ => {
                    eprintln!("--flow-cache-entries requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry" => telemetry = true,
            "--telemetry-interval-ms" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => {
                    telemetry = true;
                    telemetry_interval_ms = n;
                }
                _ => {
                    eprintln!("--telemetry-interval-ms requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--telemetry-out" => match args.next() {
                Some(path) => {
                    telemetry = true;
                    telemetry_out = path;
                }
                None => {
                    eprintln!("--telemetry-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--prom-addr" => match args.next() {
                Some(addr) => {
                    telemetry = true;
                    prom_addr = Some(addr);
                }
                None => {
                    eprintln!("--prom-addr requires an ip:port");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--sweep" => run_sweep = true,
            "--sweep-out" => match args.next() {
                Some(path) => sweep_out = path,
                None => {
                    eprintln!("--sweep-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--ingest" => run_ingest = true,
            "--ingest-out" => match args.next() {
                Some(path) => {
                    run_ingest = true;
                    ingest_out = path;
                }
                None => {
                    eprintln!("--ingest-out requires a path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--rx-batch" => match args.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => rx_batch = n,
                _ => {
                    eprintln!("--rx-batch requires a positive integer");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    // Surfaces the Prometheus listener's bound address the moment it is
    // up — the only way to learn the port when --prom-addr ends in :0.
    let (prom_addr_tx, prom_addr_rx) = std::sync::mpsc::channel::<std::net::SocketAddr>();
    let prom_printer = std::thread::spawn(move || {
        while let Ok(addr) = prom_addr_rx.recv() {
            eprintln!("prometheus exposition listening on http://{addr}/metrics");
        }
    });

    let rate = match scale {
        Scale::Quick => 50_000.0,
        Scale::Full => 200_000.0,
    };
    eprintln!("simulation benches: Host / Con / Falcon single-flow UDP at {rate:.0} pps...");
    let report = simulation_report(rate, 64);
    let rendered = serde_json::to_string_pretty(&report).expect("serializable");
    if json {
        println!("{rendered}");
    } else {
        for e in &report.results {
            println!(
                "  {:<8} {:>10.0} pps  {:>6.3} gbps  drops {:<6} p50 {:>7} ns  p99 {:>7} ns  busy {:.2} cores",
                e.mode, e.pps, e.gbps, e.drops, e.latency_p50_ns, e.latency_p99_ns, e.busy_cores,
            );
        }
    }
    if let Some(path) = out {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }

    if run_dataplane {
        eprintln!(
            "dataplane bench: real-thread vanilla vs falcon ({workers} worker(s) requested){}...",
            if wire { ", wire bytes" } else { "" }
        );
        let spec = telemetry.then(|| falcon_dataplane::TelemetrySpec {
            interval_ms: telemetry_interval_ms,
            jsonl_path: Some(telemetry_out.clone()),
            prom_addr: prom_addr.clone(),
            prom_addr_tx: Some(prom_addr_tx.clone()),
        });
        let cache_entries = (wire && flow_cache).then_some(flow_cache_entries);
        let cmp = dataplane::run_comparison_with(
            scale,
            workers,
            flows,
            split_gro,
            wire,
            spec,
            cache_entries,
            replicate,
        );
        print!("{}", dataplane::render(&cmp));
        // Keep BENCH_dataplane.json for the modeled-cost run; the
        // byte-carrying variant defaults to its own artifact.
        let out_path = dataplane_out.unwrap_or_else(|| {
            if wire {
                "BENCH_wire.json".to_string()
            } else {
                "BENCH_dataplane.json".to_string()
            }
        });
        let cmp_json = serde_json::to_string_pretty(&cmp).expect("serializable");
        if let Err(e) = std::fs::write(&out_path, cmp_json) {
            eprintln!("cannot write {out_path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out_path}");
        if telemetry {
            eprintln!("wrote {telemetry_out} (per-interval telemetry deltas)");
        }
    }

    if run_ingest {
        eprintln!(
            "ingest bench: live loopback VXLAN datagrams, vanilla vs falcon, \
             {workers} worker(s), {flows} flow(s), rx batch {rx_batch}..."
        );
        let spec = (telemetry && !run_dataplane).then(|| falcon_dataplane::TelemetrySpec {
            interval_ms: telemetry_interval_ms,
            jsonl_path: Some(telemetry_out.clone()),
            prom_addr: prom_addr.clone(),
            prom_addr_tx: Some(prom_addr_tx.clone()),
        });
        let cmp = match ingest::run_comparison_with(scale, workers, flows, rx_batch, spec) {
            Ok(cmp) => cmp,
            Err(e) => {
                eprintln!("ingest run failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        print!("{}", ingest::render(&cmp));
        let cmp_json = serde_json::to_string_pretty(&cmp).expect("serializable");
        if let Err(e) = std::fs::write(&ingest_out, cmp_json) {
            eprintln!("cannot write {ingest_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {ingest_out}");
        if !cmp.vanilla.oracle_ok || !cmp.falcon.oracle_ok {
            eprintln!(
                "FAIL: differential oracle rejected the run: {:?} {:?}",
                cmp.vanilla.oracle_errors, cmp.falcon.oracle_errors
            );
            return ExitCode::FAILURE;
        }
    }

    if run_sweep {
        eprintln!("dataplane sweep: 1..={flows} flow(s) x 1..={workers} worker(s)...");
        let cache_entries = (wire && flow_cache).then_some(flow_cache_entries);
        let sweep = dataplane::run_sweep(
            scale,
            flows,
            workers,
            split_gro,
            0,
            wire,
            cache_entries,
            replicate,
        );
        print!("{}", dataplane::render_sweep(&sweep));
        let sweep_json = serde_json::to_string_pretty(&sweep).expect("serializable");
        if let Err(e) = std::fs::write(&sweep_out, sweep_json) {
            eprintln!("cannot write {sweep_out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {sweep_out}");
        let violations = sweep.total_reorder_violations();
        if violations > 0 {
            eprintln!("FAIL: {violations} reorder violation(s) across the sweep grid");
            return ExitCode::FAILURE;
        }
    }

    // All senders gone → the printer drains and exits.
    drop(prom_addr_tx);
    let _ = prom_printer.join();

    ExitCode::SUCCESS
}

//! End-to-end workload tests: the application benchmarks run over the
//! simulated overlay, with and without Falcon.

use falcon::{enable_falcon, FalconConfig};
use falcon_cpusim::CpuSet;
use falcon_netstack::sim::SimRunner;
use falcon_netstack::{KernelVersion, NetMode, SimConfig, StackConfig, StayLocal, Steering};
use falcon_simcore::SimDuration;
use falcon_workloads::{
    DataCaching, DataCachingConfig, TcpStreams, TcpStreamsConfig, UdpPingPong, UdpStressApp,
    UdpStressConfig, WebServing, WebServingConfig,
};

fn overlay_stack(falcon_on: bool) -> (StackConfig, Box<dyn Steering>) {
    let mut server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
    let policy: Box<dyn Steering> = if falcon_on {
        enable_falcon(&mut server, FalconConfig::new(CpuSet::range(1, 5)))
    } else {
        Box::new(StayLocal)
    };
    (server, policy)
}

#[test]
fn udp_stress_app_multi_flow() {
    let (server, policy) = overlay_stack(false);
    let app = UdpStressApp::new(UdpStressConfig::multi_flow(4, 1024));
    let mut runner = SimRunner::new(SimConfig::new(server), policy, Box::new(app));
    runner.run_for(SimDuration::from_millis(15));
    let c = runner.counters();
    assert_eq!(c.flows.len(), 4, "four flows opened");
    for (flow, stats) in &c.flows {
        assert!(
            stats.delivered_msgs > 100,
            "flow {flow} delivered {}",
            stats.delivered_msgs
        );
    }
    assert_eq!(runner.machine().order.violations(), 0);
}

#[test]
fn udp_ping_pong_measures_rtt() {
    let (server, policy) = overlay_stack(false);
    let mut runner = SimRunner::new(
        SimConfig::new(server),
        policy,
        Box::new(UdpPingPong::new(64)),
    );
    runner.run_for(SimDuration::from_millis(50));
    let c = runner.counters();
    assert!(c.rtt.count() > 100, "rtt samples {}", c.rtt.count());
    assert!(
        c.rtt.percentile(50.0) < 500_000,
        "RTT should be sub-millisecond"
    );
}

#[test]
fn tcp_streams_app_delivers() {
    let (server, policy) = overlay_stack(true);
    let app = TcpStreams::new(TcpStreamsConfig::single(4096));
    let mut runner = SimRunner::new(SimConfig::new(server), policy, Box::new(app));
    runner.run_for(SimDuration::from_millis(15));
    assert!(runner.counters().total_delivered() > 300);
    assert_eq!(runner.machine().order.violations(), 0);
}

fn run_memcached(falcon_on: bool, threads: usize, millis: u64) -> SimRunner {
    let mut server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 10);
    let policy: Box<dyn Steering> = if falcon_on {
        enable_falcon(&mut server, FalconConfig::new(CpuSet::range(1, 5)))
    } else {
        Box::new(StayLocal)
    };
    let app = DataCaching::new(DataCachingConfig::new(threads));
    let mut runner = SimRunner::new(SimConfig::new(server), policy, Box::new(app));
    runner.run_for(SimDuration::from_millis(millis));
    runner
}

#[test]
fn memcached_closed_loop_sustains() {
    let runner = run_memcached(false, 2, 30);
    let c = runner.counters();
    assert!(c.rtt.count() > 500, "responses {}", c.rtt.count());
    assert_eq!(runner.machine().order.violations(), 0);
    assert_eq!(c.lookup_failures, 0);
}

fn run_memcached_open(falcon_on: bool, threads: usize, millis: u64) -> SimRunner {
    // Figure 18's layout: vanilla spreads RPS over six rx cores; Falcon
    // keeps RPS on the four IRQ cores and dedicates cores 4-7 to the
    // pipelined stages (the paper's dedicated FALCON_CPUS).
    let mut server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 14);
    server.nic = falcon_netdev::NicConfig::multi_queue(4, 1024, 4);
    server.rps = Some(if falcon_on {
        CpuSet::range(0, 4)
    } else {
        CpuSet::range(0, 6)
    });
    let policy: Box<dyn Steering> = if falcon_on {
        enable_falcon(&mut server, FalconConfig::new(CpuSet::range(4, 8)))
    } else {
        Box::new(StayLocal)
    };
    let mut dc = DataCachingConfig::open_loop(threads, 13_500.0);
    dc.app_cores = vec![8, 9, 10, 11, 12, 13];
    let app = DataCaching::new(dc);
    let mut runner = SimRunner::new(SimConfig::new(server), policy, Box::new(app));
    runner.run_for(SimDuration::from_millis(millis));
    runner
}

#[test]
fn memcached_latency_improves_with_falcon_at_high_load() {
    // Figure 18's 10-client point: fixed offered load near the rx
    // path's capacity, where vanilla's hash-imbalanced hot cores queue.
    // Measure after a warmup so both systems are in steady state (the
    // cumulative histogram would otherwise mix start-up transients in).
    let measure = |falcon_on: bool| {
        let mut runner = run_memcached_open(falcon_on, 10, 10);
        runner.begin_measurement();
        runner.run_for(SimDuration::from_millis(25));
        (
            runner.counters().rtt.mean(),
            runner.counters().rtt.percentile(99.0),
        )
    };
    let (vm, v99) = measure(false);
    let (fm, f99) = measure(true);
    assert!(
        (f99 as f64) < v99 as f64 * 0.7,
        "falcon p99 {f99}ns should be well under vanilla {v99}ns at 10 client threads"
    );
    assert!(fm < vm * 0.7, "falcon mean {fm}ns vs vanilla {vm}ns");
}

#[test]
fn memcached_single_client_is_roughly_neutral() {
    // Figure 18's 1-client point: modest tail improvement, no collapse.
    let vanilla = run_memcached_open(false, 1, 20);
    let falcon = run_memcached_open(true, 1, 20);
    let v99 = vanilla.counters().rtt.percentile(99.0) as f64;
    let f99 = falcon.counters().rtt.percentile(99.0) as f64;
    assert!(f99 < v99 * 1.15, "falcon p99 {f99} vs vanilla {v99}");
}

#[test]
fn web_serving_completes_operations() {
    let (server, policy) = overlay_stack(false);
    let (app, stats) = WebServing::new(WebServingConfig::new(50));
    let mut runner = SimRunner::new(SimConfig::new(server), policy, Box::new(app));
    runner.run_for(SimDuration::from_millis(50));
    let stats = stats.borrow();
    let total: u64 = stats.values().map(|s| s.completed).sum();
    assert!(total > 500, "completed ops {total}");
    assert!(
        stats.contains_key("BrowsetoElgg"),
        "common ops appear: {:?}",
        stats.keys()
    );
    for (name, s) in stats.iter() {
        assert!(s.successes <= s.completed, "{name}");
        assert!(s.avg_response_us() > 0.0, "{name}");
    }
    assert_eq!(runner.machine().order.violations(), 0);
}

#[test]
fn web_serving_falcon_beats_vanilla() {
    // Figure 17's setup: web workers and the RPS mask share six cores;
    // Falcon may additionally use the idle cores.
    let run = |falcon_on: bool| {
        let mut server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 12);
        server.rps = Some(CpuSet::range(1, 7));
        let policy: Box<dyn Steering> = if falcon_on {
            enable_falcon(&mut server, FalconConfig::new(CpuSet::range(1, 11)))
        } else {
            Box::new(StayLocal)
        };
        let (app, stats) = WebServing::new(WebServingConfig::new(200));
        let mut runner = SimRunner::new(SimConfig::new(server), policy, Box::new(app));
        runner.run_for(SimDuration::from_millis(60));
        let st = stats.borrow();
        let total: u64 = st.values().map(|s| s.completed).sum();
        let resp: u128 = st.values().map(|s| s.response_ns_sum).sum();
        let avg_resp = resp as f64 / total.max(1) as f64;
        (runner, total, avg_resp)
    };
    let (_v_run, v_ops, v_resp) = run(false);
    let (f_run, f_ops, f_resp) = run(true);
    assert!(
        f_ops as f64 > v_ops as f64 * 1.05,
        "falcon ops {f_ops} vs vanilla {v_ops}"
    );
    assert!(
        f_resp < v_resp * 0.6,
        "falcon resp {f_resp}ns vs vanilla {v_resp}ns"
    );
    assert_eq!(f_run.machine().order.violations(), 0);
}

//! Per-packet stage-latency decomposition.
//!
//! Aggregates [`EventKind::StageExec`] events into per-(checkpoint,
//! cpu) queueing and service totals, splitting one-way latency into
//! *where packets waited* vs *where CPUs worked*. This is the lens the
//! paper uses to show the serialization bottleneck: under vanilla RPS
//! the stage-2/3 queueing collapses onto a single core, while Falcon
//! spreads the same stages across the softirq cores.

use crate::{Event, EventKind, TraceMeta};
use std::collections::BTreeMap;

/// Accumulated totals for one (checkpoint, cpu) cell.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageStat {
    /// Packets processed.
    pub count: u64,
    /// Total input-queue waiting time, ns.
    pub queued_ns: u64,
    /// Total service (CPU) time, ns.
    pub service_ns: u64,
}

impl StageStat {
    /// Mean queueing delay per packet, ns.
    pub fn mean_queued_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.queued_ns as f64 / self.count as f64
        }
    }

    /// Mean service time per packet, ns.
    pub fn mean_service_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.service_ns as f64 / self.count as f64
        }
    }
}

/// The decomposition: a dense map from (checkpoint, cpu) to totals.
#[derive(Debug, Clone, Default)]
pub struct StageLatency {
    cells: BTreeMap<(u32, usize), StageStat>,
}

impl StageLatency {
    /// Builds the decomposition from an event stream.
    pub fn from_events(events: &[Event]) -> Self {
        let mut cells: BTreeMap<(u32, usize), StageStat> = BTreeMap::new();
        for ev in events {
            if let EventKind::StageExec {
                checkpoint,
                cpu,
                queued_ns,
                service_ns,
                ..
            } = ev.kind
            {
                let cell = cells.entry((checkpoint, cpu)).or_default();
                cell.count += 1;
                cell.queued_ns += queued_ns;
                cell.service_ns += service_ns;
            }
        }
        StageLatency { cells }
    }

    /// All (checkpoint, cpu) cells in checkpoint-then-cpu order.
    pub fn cells(&self) -> impl Iterator<Item = (&(u32, usize), &StageStat)> {
        self.cells.iter()
    }

    /// Totals per checkpoint, summed over cpus, in checkpoint order.
    pub fn per_stage(&self) -> Vec<(u32, StageStat)> {
        let mut out: BTreeMap<u32, StageStat> = BTreeMap::new();
        for (&(cp, _), st) in &self.cells {
            let agg = out.entry(cp).or_default();
            agg.count += st.count;
            agg.queued_ns += st.queued_ns;
            agg.service_ns += st.service_ns;
        }
        out.into_iter().collect()
    }

    /// The distinct cpus that ran a given checkpoint.
    pub fn cores_for_stage(&self, checkpoint: u32) -> Vec<usize> {
        self.cells
            .keys()
            .filter(|(cp, _)| *cp == checkpoint)
            .map(|&(_, cpu)| cpu)
            .collect()
    }

    /// Fraction of a stage's service time done by its busiest core
    /// (1.0 = fully serialized on one core, → 1/n = evenly spread).
    pub fn dominant_core_share(&self, checkpoint: u32) -> f64 {
        let mut max = 0u64;
        let mut total = 0u64;
        for (&(cp, _), st) in &self.cells {
            if cp == checkpoint {
                max = max.max(st.service_ns);
                total += st.service_ns;
            }
        }
        if total == 0 {
            0.0
        } else {
            max as f64 / total as f64
        }
    }

    /// Whether any stage was observed.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Text report: one row per (stage, cpu) with counts and mean
    /// queueing/service times, plus a per-stage summary line giving
    /// the core spread and the dominant-core share.
    pub fn render(&self, meta: &TraceMeta) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>4} {:>8} {:>12} {:>12}\n",
            "stage", "cpu", "pkts", "queue(ns)", "service(ns)"
        ));
        for (&(cp, cpu), st) in &self.cells {
            out.push_str(&format!(
                "{:<14} {:>4} {:>8} {:>12.0} {:>12.0}\n",
                meta.checkpoint_label(cp),
                cpu,
                st.count,
                st.mean_queued_ns(),
                st.mean_service_ns()
            ));
        }
        out.push('\n');
        for (cp, agg) in self.per_stage() {
            let cores = self.cores_for_stage(cp);
            out.push_str(&format!(
                "{:<14} cores={:<2} dominant_share={:.2} total_queue={}us total_service={}us\n",
                meta.checkpoint_label(cp),
                cores.len(),
                self.dominant_core_share(cp),
                agg.queued_ns / 1000,
                agg.service_ns / 1000
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Context;

    fn stage(at: u64, cp: u32, cpu: usize, queued: u64, service: u64) -> Event {
        Event {
            at_ns: at,
            kind: EventKind::StageExec {
                checkpoint: cp,
                cpu,
                ctx: Context::SoftIrq,
                pkt: at,
                flow: 1,
                seq: at,
                queued_ns: queued,
                service_ns: service,
            },
        }
    }

    #[test]
    fn aggregates_per_cell() {
        let events = vec![
            stage(1, 1, 2, 100, 50),
            stage(2, 1, 2, 300, 50),
            stage(3, 1, 3, 100, 70),
            stage(4, 9, 2, 10, 20),
        ];
        let sl = StageLatency::from_events(&events);
        let per = sl.per_stage();
        assert_eq!(per.len(), 2);
        assert_eq!(per[0].0, 1);
        assert_eq!(per[0].1.count, 3);
        assert_eq!(per[0].1.queued_ns, 500);
        assert_eq!(sl.cores_for_stage(1), vec![2, 3]);
        assert_eq!(sl.cores_for_stage(9), vec![2]);
    }

    #[test]
    fn dominant_share_detects_serialization() {
        // Stage 1 fully on cpu 2; stage 5 split evenly across 2/3.
        let events = vec![
            stage(1, 1, 2, 0, 100),
            stage(2, 1, 2, 0, 100),
            stage(3, 5, 2, 0, 100),
            stage(4, 5, 3, 0, 100),
        ];
        let sl = StageLatency::from_events(&events);
        assert!((sl.dominant_core_share(1) - 1.0).abs() < 1e-9);
        assert!((sl.dominant_core_share(5) - 0.5).abs() < 1e-9);
        assert_eq!(sl.dominant_core_share(42), 0.0);
    }

    #[test]
    fn render_has_rows_and_summary() {
        let meta = TraceMeta {
            n_cores: 4,
            devices: vec![(1, "eth0".into())],
        };
        let sl = StageLatency::from_events(&[stage(1, 1, 2, 100, 50)]);
        let text = sl.render(&meta);
        assert!(text.contains("eth0"));
        assert!(text.contains("dominant_share=1.00"));
    }
}

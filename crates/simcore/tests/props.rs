//! Property-based tests of the engine and RNG.

use falcon_simcore::{Engine, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always execute in (time, scheduling-order) order, no
    /// matter how they were scheduled.
    #[test]
    fn events_execute_in_order(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut eng: Engine<Vec<(u64, usize)>> = Engine::new();
        let mut log: Vec<(u64, usize)> = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            eng.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<(u64, usize)>, e| {
                w.push((e.now().as_nanos(), i));
            });
        }
        eng.run_to_completion(&mut log);
        prop_assert_eq!(log.len(), times.len());
        // Times are non-decreasing; ties resolve by scheduling index.
        for pair in log.windows(2) {
            prop_assert!(pair[0].0 <= pair[1].0);
            if pair[0].0 == pair[1].0 {
                prop_assert!(pair[0].1 < pair[1].1);
            }
        }
    }

    /// run_until never executes an event past the deadline and always
    /// advances `now` exactly to the deadline.
    #[test]
    fn run_until_respects_deadline(
        times in prop::collection::vec(0u64..1_000_000, 1..100),
        deadline in 0u64..1_000_000,
    ) {
        let mut eng: Engine<Vec<u64>> = Engine::new();
        let mut seen: Vec<u64> = Vec::new();
        for &t in &times {
            eng.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<u64>, _| w.push(t));
        }
        eng.run_until(&mut seen, SimTime::from_nanos(deadline));
        for &t in &seen {
            prop_assert!(t <= deadline);
        }
        let expected = times.iter().filter(|&&t| t <= deadline).count();
        prop_assert_eq!(seen.len(), expected);
        prop_assert_eq!(eng.now().as_nanos(), deadline);
    }

    /// Cancelled events never run; everything else does.
    #[test]
    fn cancellation_is_exact(
        times in prop::collection::vec(0u64..100_000, 1..100),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..100),
    ) {
        let mut eng: Engine<Vec<usize>> = Engine::new();
        let mut ran: Vec<usize> = Vec::new();
        let mut tokens = Vec::new();
        for (i, &t) in times.iter().enumerate() {
            let tok = eng.schedule_at(SimTime::from_nanos(t), move |w: &mut Vec<usize>, _| {
                w.push(i);
            });
            tokens.push(tok);
        }
        let mut cancelled = Vec::new();
        for (i, tok) in tokens.into_iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                eng.cancel(tok);
                cancelled.push(i);
            }
        }
        eng.run_to_completion(&mut ran);
        for i in &cancelled {
            prop_assert!(!ran.contains(i), "cancelled event {i} ran");
        }
        prop_assert_eq!(ran.len() + cancelled.len(), times.len());
    }

    /// gen_range output is always within bounds.
    #[test]
    fn gen_range_in_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.gen_range(bound) < bound);
        }
    }

    /// Forked streams from equal parents are equal; sibling streams are
    /// (overwhelmingly) distinct.
    #[test]
    fn fork_determinism(seed in any::<u64>(), stream in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        let mut fa = a.fork(stream);
        let mut fb = b.fork(stream);
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// Duration arithmetic is consistent with integer arithmetic.
    #[test]
    fn duration_arithmetic(a in 0u64..u32::MAX as u64, b in 0u64..u32::MAX as u64) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        prop_assert_eq!((da + db).as_nanos(), a + b);
        prop_assert_eq!(da.saturating_sub(db).as_nanos(), a.saturating_sub(b));
        let t = SimTime::from_nanos(a) + db;
        prop_assert_eq!(t.as_nanos(), a + b);
    }
}

//! Figure 16: adaptability — two-choice (dynamic) vs first-choice-only
//! (static) balancing under a sudden hotspot.
//!
//! Several paced flows run; mid-experiment one flow's intensity
//! quadruples, overloading the core its hash maps to. Expected shape:
//! the two-choice algorithm re-steers away from the hotspot and wins by
//! ~15–20 % in delivered rate, consistently across seeds.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_metrics::Summary;
use falcon_netdev::LinkSpeed;
use falcon_netstack::sim::{App, SimApi};
use falcon_netstack::{KernelVersion, Pacing};
use falcon_simcore::SimDuration;

use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, MF_APP_CORES};
use crate::table::{kpps, FigResult, Table};

/// Paced flows with a mid-run hotspot on flow 0.
struct HotspotApp {
    n_flows: usize,
    base_rate: f64,
    hotspot_after: SimDuration,
    hotspot_factor: f64,
}

impl App for HotspotApp {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        for i in 0..self.n_flows {
            let c = api.add_container((i / 200) as u8, (i % 200) as u8 + 10);
            let port = 5001 + i as u16;
            let app_core = MF_APP_CORES[i % MF_APP_CORES.len()];
            api.bind_udp(Some(c), port, app_core, 300);
            let flow = api.udp_flow(Some(c), port, 512);
            // Flow 0 gets two sender threads so the later hotspot is
            // not sender-limited.
            let senders = if i == 0 { 2 } else { 1 };
            let rate = self.base_rate / senders as f64;
            api.udp_stress(flow, senders, Pacing::PoissonPps(rate));
        }
        api.set_timer(self.hotspot_after, 0);
    }

    fn on_timer(&mut self, api: &mut SimApi<'_>, _token: u64) {
        // The hotspot: flow 0 suddenly intensifies (per sender thread,
        // so the aggregate is base_rate * hotspot_factor).
        api.udp_set_pacing(
            falcon_netstack::FlowId(0),
            Pacing::PoissonPps(self.base_rate * self.hotspot_factor / 2.0),
        );
    }
}

fn run_case(two_choice: bool, seed: u64, scale: Scale) -> f64 {
    let cfg = FalconConfig::new(CpuSet::range(0, 6)).with_two_choice(two_choice);
    let scenario = Scenario::multi_flow(
        Mode::Falcon(cfg),
        KernelVersion::K419,
        LinkSpeed::HundredGbit,
    )
    .with_seed(seed);
    let app = HotspotApp {
        n_flows: 6,
        base_rate: 140_000.0,
        hotspot_after: scale.warmup() / 2,
        hotspot_factor: 8.0,
    };
    let mut runner = scenario.build(Box::new(app));
    run_measured(&mut runner, scale).pps()
}

/// Dynamic vs static balancing under a hotspot, across seeds.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig16",
        "Adaptability: two-choice (dynamic) vs first-choice-only (static) balancing",
    );
    let seeds: &[u64] = match scale {
        Scale::Quick => &[1, 2],
        Scale::Full => &[1, 2, 3, 4, 5],
    };

    let dynamic: Vec<f64> = seeds.iter().map(|&s| run_case(true, s, scale)).collect();
    let stat: Vec<f64> = seeds.iter().map(|&s| run_case(false, s, scale)).collect();
    let dyn_summary = Summary::of(&dynamic);
    let stat_summary = Summary::of(&stat);

    let mut t = Table::new(&["variant", "mean Kpps", "min", "max", "cv"]);
    for (name, s) in [
        ("dynamic (two-choice)", &dyn_summary),
        ("static (first choice)", &stat_summary),
    ] {
        t.row(vec![
            name.into(),
            kpps(s.mean),
            kpps(s.min),
            kpps(s.max),
            format!("{:.3}", s.cv()),
        ]);
    }
    fig.panel("", t);
    fig.note(format!(
        "two-choice advantage: {:+.1}% (paper: ~18% UDP); consistency cv {:.3} vs {:.3}",
        (dyn_summary.mean / stat_summary.mean.max(1.0) - 1.0) * 100.0,
        dyn_summary.cv(),
        stat_summary.cv()
    ));
    fig
}

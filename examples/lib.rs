//! Shared nothing: this package exists to host the runnable examples.
//!
//! Run them with, e.g.:
//!
//! ```text
//! cargo run --release -p falcon-examples --bin quickstart
//! ```

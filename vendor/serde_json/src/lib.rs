//! Offline stand-in for `serde_json`: renders the vendored `serde`
//! [`Value`] tree as JSON text, and parses JSON text back into a
//! [`Value`] so tests can validate emitted output.

use std::fmt;

use serde::Serialize;
pub use serde::Value;

/// Serialization / parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Converts any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Renders a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Renders a value as human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::Float(x) => {
            if x.is_finite() {
                // Keep a decimal point so the token stays a float on
                // re-parse.
                let text = x.to_string();
                out.push_str(&text);
                if !text.contains('.') && !text.contains('e') && !text.contains('E') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// Parses JSON text into a [`Value`] tree.
pub fn from_str(text: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error(format!("trailing data at byte {}", parser.pos)));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, text: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected byte at {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(Error("short \\u escape".into()));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("bad \\u escape".into()))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("bad escape '\\{}'", other as char)));
                        }
                    }
                }
                b => {
                    // Re-borrow multi-byte UTF-8 sequences whole.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let mut end = self.pos;
                        while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                            end += 1;
                        }
                        let chunk = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| Error("invalid utf8 in string".into()))?;
                        out.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        } else {
            text.parse::<i128>()
                .map(Value::Int)
                .map_err(|_| Error(format!("invalid number '{text}'")))
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let v = Value::Object(vec![
            ("a".into(), Value::Int(3)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y\n".into())),
            ("d".into(), Value::Float(1.5)),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(from_str(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_stay_floats() {
        let text = to_string(&2.0f64).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str(&text).unwrap(), Value::Float(2.0));
    }
}

//! VXLAN encapsulation and decapsulation, plus inner-frame builders.
//!
//! The overlay data path wraps a container's Ethernet frame in an outer
//! Ethernet + IPv4 + UDP(4789) + VXLAN envelope on transmit, and strips
//! it on receive. [`VXLAN_OVERHEAD`] (50 bytes) is the per-packet byte
//! tax the paper's Figure 2 throughput tests pay on the wire.

use falcon_khash::FlowKeys;
use serde::{Deserialize, Serialize};

use crate::ethernet::{EtherType, EthernetHdr, MacAddr, ETHERNET_HDR_LEN};
use crate::ipv4::{IpProto, Ipv4Addr4, Ipv4Hdr, IPV4_HDR_LEN};
use crate::tcp::{TcpFlags, TcpHdr, TCP_HDR_LEN};
use crate::udp::{UdpHdr, UDP_HDR_LEN, VXLAN_PORT};
use crate::vxlan::{VxlanHdr, VXLAN_HDR_LEN};
use crate::CodecError;

/// Bytes added by VXLAN encapsulation: outer Ethernet (14) + outer IPv4
/// (20) + outer UDP (8) + VXLAN (8).
pub const VXLAN_OVERHEAD: usize = ETHERNET_HDR_LEN + IPV4_HDR_LEN + UDP_HDR_LEN + VXLAN_HDR_LEN;

/// Parameters of the outer (host-network) envelope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncapParams {
    /// Source (local host) MAC.
    pub src_mac: MacAddr,
    /// Destination (peer host) MAC.
    pub dst_mac: MacAddr,
    /// Source (local host) IP.
    pub src_ip: Ipv4Addr4,
    /// Destination (peer host) IP.
    pub dst_ip: Ipv4Addr4,
    /// Outer UDP source port. Real VXLAN derives it from the inner flow
    /// hash so that RSS can still spread *different* overlay flows.
    pub src_port: u16,
    /// The VXLAN network identifier.
    pub vni: u32,
}

/// Encapsulates an inner Ethernet frame in a VXLAN envelope.
///
/// # Examples
///
/// ```
/// use falcon_packet::encap::{vxlan_encapsulate, vxlan_decapsulate, EncapParams};
/// use falcon_packet::{Ipv4Addr4, MacAddr, VXLAN_OVERHEAD};
///
/// let inner = vec![0xAA; 100];
/// let params = EncapParams {
///     src_mac: MacAddr::from_index(1),
///     dst_mac: MacAddr::from_index(2),
///     src_ip: Ipv4Addr4::new(192, 168, 0, 1),
///     dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
///     src_port: 49152,
///     vni: 42,
/// };
/// let outer = vxlan_encapsulate(&inner, &params);
/// assert_eq!(outer.len(), inner.len() + VXLAN_OVERHEAD);
/// let (decap, vni) = vxlan_decapsulate(&outer).unwrap();
/// assert_eq!(decap, &inner[..]);
/// assert_eq!(vni, 42);
/// ```
pub fn vxlan_encapsulate(inner_frame: &[u8], params: &EncapParams) -> Vec<u8> {
    let total = inner_frame.len() + VXLAN_OVERHEAD;
    let mut out = Vec::with_capacity(total);
    EthernetHdr {
        dst: params.dst_mac,
        src: params.src_mac,
        ethertype: EtherType::Ipv4,
    }
    .push_onto(&mut out);
    Ipv4Hdr {
        total_len: (total - ETHERNET_HDR_LEN) as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Udp,
        src: params.src_ip,
        dst: params.dst_ip,
    }
    .push_onto(&mut out);
    UdpHdr {
        src_port: params.src_port,
        dst_port: VXLAN_PORT,
        len: (UDP_HDR_LEN + VXLAN_HDR_LEN + inner_frame.len()) as u16,
        checksum: 0,
    }
    .push_onto(&mut out);
    VxlanHdr::new(params.vni).push_onto(&mut out);
    out.extend_from_slice(inner_frame);
    out
}

/// Strips a VXLAN envelope, returning the inner frame bytes and the VNI.
///
/// Fails if the outer headers do not parse as Ethernet/IPv4/UDP-to-4789/
/// VXLAN.
pub fn vxlan_decapsulate(outer_frame: &[u8]) -> Result<(&[u8], u32), CodecError> {
    let eth = EthernetHdr::parse(outer_frame)?;
    if eth.ethertype != EtherType::Ipv4 {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "not IPv4",
        });
    }
    let ip_off = ETHERNET_HDR_LEN;
    let ip = Ipv4Hdr::parse(&outer_frame[ip_off..])?;
    if ip.proto != IpProto::Udp {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "not UDP",
        });
    }
    let udp_off = ip_off + IPV4_HDR_LEN;
    let udp = UdpHdr::parse(&outer_frame[udp_off..])?;
    if udp.dst_port != VXLAN_PORT {
        return Err(CodecError::Malformed {
            what: "vxlan-outer",
            why: "not port 4789",
        });
    }
    let vxlan_off = udp_off + UDP_HDR_LEN;
    let vxlan = VxlanHdr::parse(&outer_frame[vxlan_off..])?;
    Ok((&outer_frame[vxlan_off + VXLAN_HDR_LEN..], vxlan.vni))
}

/// Builds a UDP datagram frame: Ethernet + IPv4 + UDP + payload.
pub fn build_udp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    keys: &FlowKeys,
    payload: &[u8],
) -> Vec<u8> {
    let total_ip = IPV4_HDR_LEN + UDP_HDR_LEN + payload.len();
    let mut out = Vec::with_capacity(ETHERNET_HDR_LEN + total_ip);
    EthernetHdr {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .push_onto(&mut out);
    Ipv4Hdr {
        total_len: total_ip as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Udp,
        src: Ipv4Addr4(keys.src_addr),
        dst: Ipv4Addr4(keys.dst_addr),
    }
    .push_onto(&mut out);
    UdpHdr {
        src_port: keys.src_port,
        dst_port: keys.dst_port,
        len: (UDP_HDR_LEN + payload.len()) as u16,
        checksum: 0,
    }
    .push_onto(&mut out);
    out.extend_from_slice(payload);
    out
}

/// Builds a TCP segment frame: Ethernet + IPv4 + TCP + payload.
#[allow(clippy::too_many_arguments)]
pub fn build_tcp_frame(
    src_mac: MacAddr,
    dst_mac: MacAddr,
    keys: &FlowKeys,
    seq: u32,
    ack: u32,
    flags: TcpFlags,
    window: u16,
    payload: &[u8],
) -> Vec<u8> {
    let total_ip = IPV4_HDR_LEN + TCP_HDR_LEN + payload.len();
    let mut out = Vec::with_capacity(ETHERNET_HDR_LEN + total_ip);
    EthernetHdr {
        dst: dst_mac,
        src: src_mac,
        ethertype: EtherType::Ipv4,
    }
    .push_onto(&mut out);
    Ipv4Hdr {
        total_len: total_ip as u16,
        ident: 0,
        ttl: 64,
        proto: IpProto::Tcp,
        src: Ipv4Addr4(keys.src_addr),
        dst: Ipv4Addr4(keys.dst_addr),
    }
    .push_onto(&mut out);
    TcpHdr {
        src_port: keys.src_port,
        dst_port: keys.dst_port,
        seq,
        ack,
        flags,
        window,
    }
    .push_onto(&mut out);
    out.extend_from_slice(payload);
    out
}

/// Dissects the flow keys from an (inner or host) frame starting at its
/// Ethernet header — the simulation's flow dissector.
pub fn dissect_flow(frame: &[u8]) -> Result<FlowKeys, CodecError> {
    let eth = EthernetHdr::parse(frame)?;
    if eth.ethertype != EtherType::Ipv4 {
        return Err(CodecError::Malformed {
            what: "dissect",
            why: "not IPv4",
        });
    }
    let ip = Ipv4Hdr::parse(&frame[ETHERNET_HDR_LEN..])?;
    let l4 = &frame[ETHERNET_HDR_LEN + IPV4_HDR_LEN..];
    match ip.proto {
        IpProto::Udp => {
            let udp = UdpHdr::parse(l4)?;
            Ok(FlowKeys {
                src_addr: ip.src.0,
                dst_addr: ip.dst.0,
                src_port: udp.src_port,
                dst_port: udp.dst_port,
                ip_proto: 17,
            })
        }
        IpProto::Tcp => {
            let tcp = TcpHdr::parse(l4)?;
            Ok(FlowKeys {
                src_addr: ip.src.0,
                dst_addr: ip.dst.0,
                src_port: tcp.src_port,
                dst_port: tcp.dst_port,
                ip_proto: 6,
            })
        }
        IpProto::Other(_) => Err(CodecError::Malformed {
            what: "dissect",
            why: "unsupported L4 protocol",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> EncapParams {
        EncapParams {
            src_mac: MacAddr::from_index(1),
            dst_mac: MacAddr::from_index(2),
            src_ip: Ipv4Addr4::new(192, 168, 0, 1),
            dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
            src_port: 55555,
            vni: 7,
        }
    }

    fn inner_udp() -> Vec<u8> {
        let keys = FlowKeys::udp(
            Ipv4Addr4::new(10, 0, 0, 1).0,
            5001,
            Ipv4Addr4::new(10, 0, 0, 2).0,
            8080,
        );
        build_udp_frame(
            MacAddr::from_index(10),
            MacAddr::from_index(11),
            &keys,
            &[9u8; 32],
        )
    }

    #[test]
    fn encap_decap_round_trip() {
        let inner = inner_udp();
        let outer = vxlan_encapsulate(&inner, &params());
        assert_eq!(outer.len(), inner.len() + VXLAN_OVERHEAD);
        let (decap, vni) = vxlan_decapsulate(&outer).unwrap();
        assert_eq!(decap, &inner[..]);
        assert_eq!(vni, 7);
    }

    #[test]
    fn outer_flow_differs_from_inner_flow() {
        // The whole point of encapsulation: the host network sees the
        // outer (host IP, port-4789) flow, not the container flow.
        let inner = inner_udp();
        let outer = vxlan_encapsulate(&inner, &params());
        let inner_keys = dissect_flow(&inner).unwrap();
        let outer_keys = dissect_flow(&outer).unwrap();
        assert_ne!(inner_keys, outer_keys);
        assert_eq!(outer_keys.dst_port, VXLAN_PORT);
        assert_eq!(outer_keys.src_addr, Ipv4Addr4::new(192, 168, 0, 1).0);
    }

    #[test]
    fn decap_rejects_plain_udp() {
        // A frame whose UDP port is not 4789 is not VXLAN.
        let frame = inner_udp();
        assert!(matches!(
            vxlan_decapsulate(&frame),
            Err(CodecError::Malformed {
                why: "not port 4789",
                ..
            })
        ));
    }

    #[test]
    fn decap_rejects_tcp_outer() {
        let keys = FlowKeys::tcp(1, 2, 3, 4);
        let frame = build_tcp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &keys,
            0,
            0,
            TcpFlags::data(),
            100,
            &[],
        );
        assert!(matches!(
            vxlan_decapsulate(&frame),
            Err(CodecError::Malformed { why: "not UDP", .. })
        ));
    }

    #[test]
    fn dissect_udp_and_tcp() {
        let ukeys = FlowKeys::udp(100, 1, 200, 2);
        let uframe = build_udp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &ukeys,
            &[0; 8],
        );
        assert_eq!(dissect_flow(&uframe).unwrap(), ukeys);

        let tkeys = FlowKeys::tcp(100, 1, 200, 2);
        let tframe = build_tcp_frame(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            &tkeys,
            5,
            6,
            TcpFlags::data(),
            100,
            &[0; 8],
        );
        assert_eq!(dissect_flow(&tframe).unwrap(), tkeys);
    }

    #[test]
    fn nested_encapsulation_parses() {
        // VXLAN-in-VXLAN should still round-trip (the stack never does
        // this, but the codec must not care).
        let inner = inner_udp();
        let mid = vxlan_encapsulate(&inner, &params());
        let outer = vxlan_encapsulate(&mid, &params());
        let (once, _) = vxlan_decapsulate(&outer).unwrap();
        let (twice, _) = vxlan_decapsulate(once).unwrap();
        assert_eq!(twice, &inner[..]);
    }
}

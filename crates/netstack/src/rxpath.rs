//! The server receive-path dispatcher: per-core work selection, stage
//! plans, and stage-transition application.
//!
//! Each server core is a priority server over three work classes
//! (hardirq > softirq > task), dispatching one *work unit* at a time. A
//! work unit is one packet's processing at one pipeline stage — a batch
//! of kernel function invocations charged to the core as a whole, with
//! per-function attribution in the ledger. Completion applies the
//! unit's *outcome*: enqueue to another queue (possibly on another CPU,
//! raising a softirq or an IPI there), wake the application, transmit
//! an ack or response.
//!
//! The overlay receive pipeline and its softirq boundaries follow the
//! paper's Figure 3/Figure 8 exactly; the vanilla-vs-Falcon difference
//! is confined to the [`Steering`](crate::steering::Steering) decision
//! at each boundary.

use falcon_metrics::{Context, IrqKind};
use falcon_packet::{decap_bounds, dissect_flow, EthernetHdr, SkBuff};
use falcon_simcore::{Engine, SimDuration, SimTime};
use falcon_trace::{DropReason, EventKind};

use crate::config::NetMode;
use crate::machine::{FragAsm, HardIrqWork, NapiRef, TaskWork};
use crate::sim::{client_on_ack, client_on_response, with_app, MsgMeta, Sim, SimInner};
use crate::socket::SockId;
use crate::steering::{rps_cpu, SteerCtx};
use crate::transport::FlowId;

// Checkpoint ids are `ifindex | flags`; the flag constants are shared
// with the trace layer so trace consumers can decode them.
pub use falcon_trace::{DELIVERY_CHECK, STAGE_B_CHECK};

/// A single function-cost item of a work unit.
pub type WorkItem = (&'static str, SimDuration);

/// What happens when a work unit completes.
#[derive(Debug)]
pub enum NextStep {
    /// Put a NAPI instance on this core's poll list (hardirq bottom
    /// half).
    ScheduleNapi {
        /// The instance to schedule.
        napi: NapiRef,
    },
    /// Enqueue onto a CPU's input packet queue.
    EnqueueBacklog {
        /// Target CPU.
        cpu: usize,
        /// The packet.
        skb: SkBuff,
    },
    /// Enqueue onto a CPU's VXLAN gro_cell.
    EnqueueGroCell {
        /// Target CPU.
        cpu: usize,
        /// The packet.
        skb: SkBuff,
    },
    /// Queue user-space delivery on the socket's application core.
    SocketTask {
        /// Destination socket.
        sock: SockId,
        /// The packet.
        skb: SkBuff,
    },
    /// The application received the message (task work finished).
    AppDeliver {
        /// Destination socket.
        sock: SockId,
        /// The packet.
        skb: SkBuff,
    },
    /// Transmit to the client (ack or response).
    ServerTx(ServerTxMsg),
}

/// A server-to-client transmission.
#[derive(Debug)]
pub struct ServerTxMsg {
    /// Flow id.
    pub flow: u64,
    /// Payload semantics.
    pub kind: TxKind,
}

/// What a server transmission carries.
#[derive(Debug)]
pub enum TxKind {
    /// Cumulative TCP ack up to segment `upto` (inclusive).
    Ack {
        /// Highest acknowledged segment.
        upto: u64,
    },
    /// An application response.
    Response {
        /// Correlation id.
        msg_id: u64,
        /// Payload bytes.
        bytes: usize,
    },
}

/// The outcome of the work unit currently running on a core.
#[derive(Debug)]
pub struct PendingOutcome {
    /// Steps to apply at completion.
    pub steps: Vec<NextStep>,
}

/// A new frame finished arriving at the server NIC.
pub fn frame_arrival(sim: &mut Sim, eng: &mut Engine<Sim>, mut skb: SkBuff) {
    let inner = &mut sim.inner;
    let now = eng.now();
    skb.nic_arrival = now;
    skb.queued_at = now;
    let Ok(keys) = dissect_flow(&skb.data) else {
        return; // Undissectable frames are dropped by the NIC filter.
    };
    let m = &mut inner.machine;
    let queue = m.nic.select_queue(&keys);
    let (accepted, irq) = m
        .nic
        .receive_traced(queue, skb, now.as_nanos(), &mut inner.tracer);
    if !accepted {
        inner.counters.drops.bump(DropReason::Ring);
        return;
    }
    if let Some(core) = irq {
        m.cores.irqs.count(core, IrqKind::HardIrq);
        m.hardirq_q[core].push_back(HardIrqWork::NicIrq { queue });
        kick(inner, eng, core);
    }
}

/// Dispatches the next work unit on `core`, if the core is idle and
/// work is pending. Safe to call redundantly.
pub fn kick(inner: &mut SimInner, eng: &mut Engine<Sim>, core: usize) {
    if !inner.machine.cores.is_idle(core) {
        return;
    }
    debug_assert!(
        inner.running[core].is_none(),
        "idle core with pending outcome"
    );
    let now = eng.now();

    // 1. Hardware interrupts.
    if let Some(irq) = inner.machine.hardirq_q[core].pop_front() {
        inner.machine.softirq_streak[core] = 0;
        let (items, steps) = plan_hardirq(inner, core, irq);
        begin(inner, eng, core, Context::HardIrq, now, items, steps);
        return;
    }

    // ksoftirqd fairness: a long softirq streak with task work pending
    // yields one task-context unit, as the kernel's softirq budget +
    // ksoftirqd deferral would.
    if inner.machine.softirq_streak[core] >= inner.cfg.server.softirq_quantum
        && !inner.machine.task_q[core].is_empty()
    {
        inner.machine.softirq_streak[core] = 0;
        let task = inner.machine.task_q[core]
            .pop_front()
            .expect("checked non-empty");
        let (items, steps) = plan_task(inner, now, core, task);
        begin(inner, eng, core, Context::Task, now, items, steps);
        return;
    }

    // 2. NET_RX softirq: walk the poll list, completing drained NAPIs.
    while let Some(&napi) = inner.machine.poll_list[core].front() {
        let planned = match napi {
            NapiRef::Nic { queue } => {
                if inner.machine.nic.ring_len(queue) == 0 {
                    inner.machine.nic.napi_complete(queue);
                    None
                } else {
                    Some(plan_nic_poll(inner, now, core, queue))
                }
            }
            NapiRef::GroCell => {
                if inner.machine.grocells.len(core) == 0 {
                    inner.machine.grocells.napi_complete(core);
                    None
                } else {
                    Some(plan_grocell(inner, now, core))
                }
            }
            NapiRef::Backlog => {
                if inner.machine.backlogs.len(core) == 0 {
                    inner.machine.backlogs.napi_complete(core);
                    None
                } else {
                    Some(plan_backlog(inner, now, core))
                }
            }
        };
        match planned {
            None => {
                inner.machine.poll_list[core].pop_front();
            }
            Some((items, steps)) => {
                // Round-robin: rotate this NAPI to the back.
                let head = inner.machine.poll_list[core]
                    .pop_front()
                    .expect("head vanished");
                inner.machine.poll_list[core].push_back(head);
                inner.machine.softirq_streak[core] += 1;
                begin(inner, eng, core, Context::SoftIrq, now, items, steps);
                return;
            }
        }
    }

    // 3. Task work.
    if let Some(task) = inner.machine.task_q[core].pop_front() {
        inner.machine.softirq_streak[core] = 0;
        let (items, steps) = plan_task(inner, now, core, task);
        begin(inner, eng, core, Context::Task, now, items, steps);
    }
}

/// Emits a [`EventKind::StageExec`] tracepoint for one pipeline stage,
/// decomposing the packet's time at this stage into queueing
/// (`queued_at` → dispatch) and service (the work unit's total cost).
#[allow(clippy::too_many_arguments)]
fn emit_stage(
    inner: &mut SimInner,
    now: SimTime,
    checkpoint: u32,
    cpu: usize,
    ctx: Context,
    pkt: u64,
    flow: u64,
    seq: u64,
    queued_ns: u64,
    items: &[WorkItem],
) {
    if !inner.tracer.is_enabled() {
        return;
    }
    let service_ns: u64 = items.iter().map(|&(_, d)| d.as_nanos()).sum();
    inner.tracer.emit(
        now.as_nanos(),
        EventKind::StageExec {
            checkpoint,
            cpu,
            ctx,
            pkt,
            flow,
            seq,
            queued_ns,
            service_ns,
        },
    );
}

/// Starts a work unit and schedules its completion.
fn begin(
    inner: &mut SimInner,
    eng: &mut Engine<Sim>,
    core: usize,
    ctx: Context,
    now: SimTime,
    items: Vec<WorkItem>,
    steps: Vec<NextStep>,
) {
    let until = inner
        .machine
        .cores
        .begin_work_traced(core, ctx, now, &items, &mut inner.tracer);
    inner.running[core] = Some(PendingOutcome { steps });
    eng.schedule_at(until, move |s: &mut Sim, e: &mut Engine<Sim>| {
        on_core_done(s, e, core);
    });
}

/// Completion of the work unit on `core`: apply its outcome, dispatch
/// the next unit.
fn on_core_done(sim: &mut Sim, eng: &mut Engine<Sim>, core: usize) {
    let now = eng.now();
    sim.inner.machine.cores.complete(core, now);
    let outcome = sim.inner.running[core]
        .take()
        .expect("completion without outcome");
    for step in outcome.steps {
        apply_step(sim, eng, core, step);
    }
    kick(&mut sim.inner, eng, core);
}

/// Applies a single completed-work step.
fn apply_step(sim: &mut Sim, eng: &mut Engine<Sim>, from_core: usize, step: NextStep) {
    match step {
        NextStep::ScheduleNapi { napi } => {
            let list = &mut sim.inner.machine.poll_list[from_core];
            debug_assert!(!list.contains(&napi), "NAPI scheduled twice");
            list.push_back(napi);
        }
        NextStep::EnqueueBacklog { cpu, mut skb } => {
            let now_ns = eng.now().as_nanos();
            skb.queued_at = eng.now();
            let pkt = skb.id.0;
            let flow = skb.flow_id;
            let m = &mut sim.inner.machine;
            let (accepted, need_softirq) = m.backlogs.enqueue(cpu, skb);
            if !accepted {
                sim.inner.counters.drops.bump(DropReason::Backlog);
                sim.inner.tracer.emit(
                    now_ns,
                    EventKind::QueueDrop {
                        reason: DropReason::Backlog,
                        cpu,
                        pkt,
                        flow,
                    },
                );
                return;
            }
            let qlen = m.backlogs.len(cpu);
            sim.inner.tracer.emit(
                now_ns,
                EventKind::BacklogEnqueue {
                    cpu,
                    pkt,
                    flow,
                    qlen,
                },
            );
            if need_softirq {
                raise_net_rx(sim, eng, from_core, cpu, NapiRef::Backlog);
            }
        }
        NextStep::EnqueueGroCell { cpu, mut skb } => {
            let now_ns = eng.now().as_nanos();
            skb.queued_at = eng.now();
            let pkt = skb.id.0;
            let flow = skb.flow_id;
            let m = &mut sim.inner.machine;
            let (accepted, need_softirq) = m.grocells.enqueue(cpu, skb);
            if !accepted {
                sim.inner.counters.drops.bump(DropReason::GroCell);
                sim.inner.tracer.emit(
                    now_ns,
                    EventKind::QueueDrop {
                        reason: DropReason::GroCell,
                        cpu,
                        pkt,
                        flow,
                    },
                );
                return;
            }
            let qlen = m.grocells.len(cpu);
            sim.inner.tracer.emit(
                now_ns,
                EventKind::GroCellEnqueue {
                    cpu,
                    pkt,
                    flow,
                    qlen,
                },
            );
            if need_softirq {
                raise_net_rx(sim, eng, from_core, cpu, NapiRef::GroCell);
            }
        }
        NextStep::SocketTask { sock, mut skb } => {
            skb.queued_at = eng.now();
            let m = &mut sim.inner.machine;
            let app_core = m.sockets.get(sock).app_core;
            m.task_q[app_core].push_back(TaskWork::Deliver { sock, skb });
            if app_core != from_core && m.cores.is_idle(app_core) {
                // Scheduler wakeup: rescheduling IPI plus wake latency.
                m.cores.irqs.count(app_core, IrqKind::ResIpi);
                sim.inner.tracer.emit(
                    eng.now().as_nanos(),
                    EventKind::Wakeup {
                        src: from_core,
                        dst: app_core,
                    },
                );
                let wake = sim.inner.machine.cfg.wake_latency;
                eng.schedule_after(wake, move |s: &mut Sim, e: &mut Engine<Sim>| {
                    kick(&mut s.inner, e, app_core);
                });
            }
        }
        NextStep::AppDeliver { sock, skb } => {
            deliver_to_app(sim, eng, sock, skb);
        }
        NextStep::ServerTx(msg) => {
            server_tx(sim, eng, msg);
        }
    }
}

/// Raises NET_RX for `napi` on `cpu`: locally by poll-list insert,
/// remotely via an IPI after the IPI latency.
fn raise_net_rx(sim: &mut Sim, eng: &mut Engine<Sim>, from_core: usize, cpu: usize, napi: NapiRef) {
    sim.inner.tracer.emit(
        eng.now().as_nanos(),
        EventKind::SoftirqRaise {
            src: from_core,
            dst: cpu,
            ipi: cpu != from_core,
        },
    );
    let m = &mut sim.inner.machine;
    m.cores.irqs.count(cpu, IrqKind::NetRx);
    if cpu == from_core {
        let list = &mut m.poll_list[cpu];
        debug_assert!(!list.contains(&napi), "NAPI raised twice locally");
        list.push_back(napi);
    } else {
        m.cores.irqs.count(cpu, IrqKind::BacklogIpi);
        let latency = SimDuration::from_nanos(m.cfg.costs.ipi_latency_ns);
        eng.schedule_after(latency, move |s: &mut Sim, e: &mut Engine<Sim>| {
            s.inner.machine.hardirq_q[cpu].push_back(HardIrqWork::NapiKick { napi });
            kick(&mut s.inner, e, cpu);
        });
    }
}

/// Final delivery: accounting, ordering check, app callback.
fn deliver_to_app(sim: &mut Sim, eng: &mut Engine<Sim>, sock: SockId, skb: SkBuff) {
    let now = eng.now();
    let inner = &mut sim.inner;
    let flow = skb.flow_id;
    inner
        .machine
        .order
        .check(flow, DELIVERY_CHECK, skb.flow_seq, 1);
    let latency = now.saturating_since(skb.sent_at).as_nanos();
    let rx_latency = now.saturating_since(skb.nic_arrival).as_nanos();
    let record = now >= inner.measure_from;
    if inner.tracer.is_enabled() {
        let digest = falcon_trace::hop_hash(skb.trace.iter().map(|h| (h.ifindex, h.cpu)));
        inner.tracer.emit(
            now.as_nanos(),
            EventKind::Deliver {
                cpu: skb.last_cpu.unwrap_or(0),
                pkt: skb.id.0,
                flow,
                latency_ns: latency,
                hops: skb.trace.len() as u32,
                hop_hash: digest,
            },
        );
    }

    let socket = inner.machine.sockets.get_mut(sock);
    socket.delivered_msgs += 1;
    socket.delivered_bytes += skb.payload_len as u64;
    if record {
        socket.latency.record(latency);
        inner.counters.latency.record(latency);
        inner.counters.rx_latency.record(rx_latency);
    }
    let is_tcp = skb.tcp_seg > 0 || skb.gro_segs > 1 || {
        inner
            .client
            .flows
            .get(flow as usize)
            .map(|f| f.keys.ip_proto == 6)
            .unwrap_or(false)
    };
    let stats = inner.counters.flow_mut(flow);
    stats.delivered_msgs += if is_tcp { skb.gro_segs as u64 } else { 1 };
    stats.delivered_bytes += skb.payload_len as u64;

    let meta = MsgMeta {
        flow: FlowId(flow as u32),
        bytes: skb.payload_len,
        msg_id: skb.msg_id,
        sent_at: skb.sent_at,
        segments: skb.gro_segs,
    };
    with_app(sim, eng, |app, api| app.on_server_msg(api, sock, &meta));
}

/// Transmits an ack or response to the client and schedules its
/// delivery there.
fn server_tx(sim: &mut Sim, eng: &mut Engine<Sim>, msg: ServerTxMsg) {
    let now = eng.now();
    let inner = &mut sim.inner;
    let overlay = inner.cfg.server.mode == NetMode::Overlay;
    let encap_overhead = if overlay {
        falcon_packet::VXLAN_OVERHEAD
    } else {
        0
    };
    let flow = FlowId(msg.flow as u32);
    match msg.kind {
        TxKind::Ack { upto } => {
            inner.counters.acks_sent += 1;
            let wire_bytes = 14 + 20 + 20 + encap_overhead + 24;
            let arrival = inner
                .wire
                .transmit(falcon_netdev::wire::Dir::BtoA, now, wire_bytes);
            let deliver_at = arrival + inner.cfg.client_rx_delay;
            eng.schedule_at(deliver_at, move |s: &mut Sim, e: &mut Engine<Sim>| {
                client_on_ack(s, e, flow, upto);
            });
        }
        TxKind::Response { msg_id, bytes } => {
            // Segment large responses across MTU-sized frames.
            let mss = inner.cfg.server.mss();
            let n_frames = bytes.div_ceil(mss).max(1);
            let mut last_arrival = now;
            for i in 0..n_frames {
                let chunk = if i + 1 == n_frames {
                    bytes - i * mss
                } else {
                    mss
                };
                let wire_bytes = 14 + 40 + encap_overhead + chunk + 24;
                last_arrival = inner
                    .wire
                    .transmit(falcon_netdev::wire::Dir::BtoA, now, wire_bytes);
            }
            let deliver_at = last_arrival + inner.cfg.client_rx_delay;
            eng.schedule_at(deliver_at, move |s: &mut Sim, e: &mut Engine<Sim>| {
                client_on_response(s, e, flow, msg_id, bytes);
            });
        }
    }
}

// ---------------------------------------------------------------------
// Stage plans.
// ---------------------------------------------------------------------

/// Hardirq handlers.
fn plan_hardirq(
    inner: &mut SimInner,
    _core: usize,
    irq: HardIrqWork,
) -> (Vec<WorkItem>, Vec<NextStep>) {
    let costs = &inner.cfg.server.costs;
    match irq {
        HardIrqWork::NicIrq { queue } => (
            vec![("pnic_interrupt", SimDuration::from_nanos(costs.hardirq_ns))],
            vec![NextStep::ScheduleNapi {
                napi: NapiRef::Nic { queue },
            }],
        ),
        HardIrqWork::NapiKick { napi } => (
            vec![("ipi_handler", SimDuration::from_nanos(costs.ipi_cost_ns))],
            vec![NextStep::ScheduleNapi { napi }],
        ),
    }
}

/// Chooses the next-stage CPU at a stage-transition point, with
/// out-of-order-flow protection: if the policy's choice differs from
/// the CPU this (flow, stage) currently runs on and packets are still
/// in flight there, the switch is deferred (the kernel's
/// `rps_dev_flow` qtail check does the same for RPS).
fn steer(inner: &mut SimInner, now: SimTime, skb: &SkBuff, ifindex: u32, current: usize) -> usize {
    let m = &mut inner.machine;
    let ctx = SteerCtx {
        rx_hash: skb.rx_hash,
        ifindex,
        current_cpu: current,
        loads: &m.load,
    };
    let mut target = match m.steering.select_cpu(&ctx) {
        Some(cpu) => cpu,
        None => current,
    };
    if inner.tracer.is_enabled() {
        for kind in m.steering.take_trace() {
            inner.tracer.emit(now.as_nanos(), kind);
        }
    }
    /// In-flight migrations are rate-limited: at most one per (flow,
    /// stage) every this many load samples (~ms each), so a stage
    /// cannot ping-pong between two candidates at the load-smoothing
    /// period.
    const MIGRATE_COOLDOWN_SAMPLES: u64 = 25;
    let samples = m.load.samples();
    let migrate_ok = {
        let entry = inner
            .steer_flows
            .get(&(skb.flow_id, ifindex))
            .copied()
            .unwrap_or(crate::sim::SteerFlowState {
                cpu: target,
                inflight: 0,
                last_migrate_sample: 0,
            });
        entry.inflight == 0
            || entry.cpu == target
            || (samples >= entry.last_migrate_sample + MIGRATE_COOLDOWN_SAMPLES
                && m.steering
                    .allow_inflight_migration(entry.cpu, target, &m.load))
    };
    let entry =
        inner
            .steer_flows
            .entry((skb.flow_id, ifindex))
            .or_insert(crate::sim::SteerFlowState {
                cpu: target,
                inflight: 0,
                last_migrate_sample: 0,
            });
    if entry.cpu != target {
        if migrate_ok {
            let from = entry.cpu;
            entry.cpu = target;
            if entry.inflight > 0 {
                entry.last_migrate_sample = samples;
            }
            inner.tracer.emit(
                now.as_nanos(),
                EventKind::FlowMigration {
                    flow: skb.flow_id,
                    ifindex,
                    from,
                    to: target,
                },
            );
        } else {
            target = entry.cpu;
        }
    }
    entry.inflight += 1;
    if target != current {
        inner.counters.steered_remote += 1;
    } else {
        inner.counters.steered_local += 1;
    }
    target
}

/// Marks one packet of (flow, stage-device) as processed at its stage,
/// releasing the out-of-order-flow protection hold.
fn steer_arrived(inner: &mut SimInner, flow: u64, ifindex: u32) {
    if let Some(entry) = inner.steer_flows.get_mut(&(flow, ifindex)) {
        entry.inflight = entry.inflight.saturating_sub(1);
    }
}

/// Whether GRO may engage for this packet's flow.
fn gro_eligible(inner: &SimInner, skb: &SkBuff) -> bool {
    if !inner.cfg.server.gro {
        return false;
    }
    inner
        .client
        .flows
        .get(skb.flow_id as usize)
        .map(|f| f.keys.ip_proto == 6 && f.gro_ok)
        .unwrap_or(false)
}

/// Stage A: the driver poll (`mlx5e_napi_poll`) — allocation, GRO,
/// `netif_receive_skb`, RPS, backlog handoff.
fn plan_nic_poll(
    inner: &mut SimInner,
    now: SimTime,
    core: usize,
    queue: usize,
) -> (Vec<WorkItem>, Vec<NextStep>) {
    let mut skb = inner
        .machine
        .nic
        .pop(queue)
        .expect("planned empty nic queue");
    let costs = inner.cfg.server.costs.clone();
    let pnic = inner.machine.ifx.pnic;
    let queued_ns = now.saturating_since(skb.queued_at).as_nanos();
    let mut items: Vec<WorkItem> = Vec::with_capacity(8);

    // Dissect (hardware already did RSS on these headers; the softirq
    // computes skb->hash for RPS).
    let keys = dissect_flow(&skb.data).expect("frame was dissectable at RSS");
    skb.flow = Some(keys);
    skb.rx_hash = inner.machine.flow_hash(&keys);
    skb.dev_ifindex = pnic;
    inner
        .machine
        .order
        .check(skb.flow_id, pnic, skb.flow_seq, 1);
    let seq0 = skb.flow_seq;

    let gro_ok = gro_eligible(inner, &skb);
    let split = inner.cfg.server.split_gro && gro_ok;

    items.push(("skb_allocation", costs.skb_alloc(skb.len())));

    if split {
        // GRO-splitting: insert netif_rx *before* napi_gro_receive and
        // move the GRO half-stage to another core (paper Figure 9b).
        skb.gro_pending = true;
        let split_if = inner.machine.ifx.pnic_split;
        let target = steer(inner, now, &skb, split_if, core);
        items.push(("netif_rx", SimDuration::from_nanos(costs.netif_rx_ns)));
        items.push((
            "enqueue_to_backlog",
            SimDuration::from_nanos(costs.enqueue_backlog_ns),
        ));
        skb.record_hop(pnic, core);
        emit_stage(
            inner,
            now,
            pnic,
            core,
            Context::SoftIrq,
            skb.id.0,
            skb.flow_id,
            seq0,
            queued_ns,
            &items,
        );
        return (items, vec![NextStep::EnqueueBacklog { cpu: target, skb }]);
    }

    // GRO: coalesce consecutive same-flow segments waiting in the ring.
    if gro_ok {
        items.push(("napi_gro_receive", costs.gro_receive(true, skb.len())));
        while !skb.psh && (skb.gro_segs as usize) < inner.cfg.server.gro_batch {
            let mergeable = inner
                .machine
                .nic
                .peek(queue)
                .map(|n| n.flow_id == skb.flow_id)
                .unwrap_or(false);
            if !mergeable {
                break;
            }
            let nx = inner.machine.nic.pop(queue).expect("peeked frame vanished");
            inner.machine.order.check(nx.flow_id, pnic, nx.flow_seq, 1);
            inner.tracer.emit(
                now.as_nanos(),
                EventKind::GroMerge {
                    checkpoint: pnic,
                    cpu: core,
                    absorbed: nx.id.0,
                    into: skb.id.0,
                    flow: skb.flow_id,
                },
            );
            items.push(("skb_allocation", costs.skb_alloc(nx.len())));
            items.push(("napi_gro_receive", costs.gro_receive(true, nx.len())));
            skb.gro_segs += 1;
            skb.gro_extra_bytes += nx.len();
            skb.payload_len += nx.payload_len;
            skb.flow_seq = nx.flow_seq; // Monotonic: checked above.
            skb.tcp_seg = nx.tcp_seg;
            skb.psh = nx.psh; // A merged-in PSH flushes the batch.
        }
    } else {
        items.push(("napi_gro_receive", costs.gro_receive(false, skb.len())));
    }

    items.push((
        "netif_receive_skb",
        SimDuration::from_nanos(costs.netif_receive_ns),
    ));
    let target = match &inner.cfg.server.rps {
        Some(mask) => {
            items.push(("get_rps_cpu", SimDuration::from_nanos(costs.get_rps_cpu_ns)));
            rps_cpu(skb.rx_hash, mask)
        }
        None => core,
    };
    items.push((
        "enqueue_to_backlog",
        SimDuration::from_nanos(costs.enqueue_backlog_ns),
    ));
    skb.record_hop(pnic, core);
    emit_stage(
        inner,
        now,
        pnic,
        core,
        Context::SoftIrq,
        skb.id.0,
        skb.flow_id,
        seq0,
        queued_ns,
        &items,
    );
    (items, vec![NextStep::EnqueueBacklog { cpu: target, skb }])
}

/// Stage C: `gro_cell_poll` — the VXLAN device's softirq, which walks
/// the inner frame through the bridge and veth into the container.
fn plan_grocell(inner: &mut SimInner, now: SimTime, core: usize) -> (Vec<WorkItem>, Vec<NextStep>) {
    let mut skb = inner
        .machine
        .grocells
        .dequeue(core)
        .expect("planned empty gro_cell");
    let costs = inner.cfg.server.costs.clone();
    let vxlan = inner.machine.ifx.vxlan;
    let queued_ns = now.saturating_since(skb.queued_at).as_nanos();
    steer_arrived(inner, skb.flow_id, vxlan);
    let mut items: Vec<WorkItem> = Vec::with_capacity(8);

    if skb.last_cpu != Some(core) {
        items.push((
            "cache_miss",
            SimDuration::from_nanos(costs.locality_penalty_ns),
        ));
    }
    inner
        .machine
        .order
        .check(skb.flow_id, vxlan, skb.flow_seq, 1);
    items.push((
        "gro_cell_poll",
        SimDuration::from_nanos(costs.gro_cell_poll_ns),
    ));
    items.push((
        "netif_receive_skb",
        SimDuration::from_nanos(costs.netif_receive_ns),
    ));

    // Bridge: FDB lookup on the real inner destination MAC.
    let eth = EthernetHdr::parse(&skb.data).expect("inner frame has ethernet");
    let _port = inner.machine.fdb.lookup(eth.dst);
    items.push(("br_handle_frame", SimDuration::from_nanos(costs.bridge_ns)));
    items.push(("veth_xmit", SimDuration::from_nanos(costs.veth_xmit_ns)));
    items.push(("netif_rx", SimDuration::from_nanos(costs.netif_rx_ns)));
    items.push((
        "enqueue_to_backlog",
        SimDuration::from_nanos(costs.enqueue_backlog_ns),
    ));

    // The veth the packet crosses identifies the third pipeline stage.
    let inner_keys = skb.flow.expect("flow keys set at decap");
    let veth_if = inner
        .machine
        .container_for_ip(inner_keys.dst_addr)
        .map(|c| c.veth_ifindex)
        .unwrap_or(vxlan + 1);
    skb.record_hop(vxlan, core);
    skb.dev_ifindex = veth_if;
    let target = steer(inner, now, &skb, veth_if, core);
    emit_stage(
        inner,
        now,
        vxlan,
        core,
        Context::SoftIrq,
        skb.id.0,
        skb.flow_id,
        skb.flow_seq,
        queued_ns,
        &items,
    );
    (items, vec![NextStep::EnqueueBacklog { cpu: target, skb }])
}

/// Stages A2, B and D all drain a backlog; which one a packet is in is
/// determined by its device pointer and GRO state.
fn plan_backlog(inner: &mut SimInner, now: SimTime, core: usize) -> (Vec<WorkItem>, Vec<NextStep>) {
    let skb = inner
        .machine
        .backlogs
        .dequeue(core)
        .expect("planned empty backlog");
    if skb.gro_pending {
        plan_backlog_gro_half(inner, now, core, skb)
    } else if skb.dev_ifindex == inner.machine.ifx.pnic {
        match inner.cfg.server.mode {
            NetMode::Overlay => plan_backlog_outer(inner, now, core, skb),
            NetMode::Host => plan_backlog_final(inner, now, core, skb, STAGE_B_CHECK),
        }
    } else {
        // Inner frame behind a veth: the container's stack.
        plan_backlog_final(inner, now, core, skb, 0)
    }
}

/// Stage A2 (split GRO): the deferred `napi_gro_receive` half-stage.
fn plan_backlog_gro_half(
    inner: &mut SimInner,
    now: SimTime,
    core: usize,
    mut skb: SkBuff,
) -> (Vec<WorkItem>, Vec<NextStep>) {
    let costs = inner.cfg.server.costs.clone();
    let split_if = inner.machine.ifx.pnic_split;
    let queued_ns = now.saturating_since(skb.queued_at).as_nanos();
    steer_arrived(inner, skb.flow_id, split_if);
    let mut items: Vec<WorkItem> = Vec::with_capacity(8);

    if skb.last_cpu != Some(core) {
        items.push((
            "cache_miss",
            SimDuration::from_nanos(costs.locality_penalty_ns),
        ));
    }
    items.push((
        "process_backlog",
        SimDuration::from_nanos(costs.process_backlog_ns),
    ));
    inner
        .machine
        .order
        .check(skb.flow_id, split_if, skb.flow_seq, 1);
    let seq0 = skb.flow_seq;
    items.push(("napi_gro_receive", costs.gro_receive(true, skb.len())));

    // Coalesce with queued same-flow pre-GRO segments (PSH flushes).
    while !skb.psh && (skb.gro_segs as usize) < inner.cfg.server.gro_batch {
        let mergeable = inner
            .machine
            .backlogs
            .peek(core)
            .map(|n| n.flow_id == skb.flow_id && n.gro_pending)
            .unwrap_or(false);
        if !mergeable {
            break;
        }
        let nx = inner
            .machine
            .backlogs
            .dequeue(core)
            .expect("peeked skb vanished");
        steer_arrived(inner, nx.flow_id, split_if);
        inner
            .machine
            .order
            .check(nx.flow_id, split_if, nx.flow_seq, 1);
        inner.tracer.emit(
            now.as_nanos(),
            EventKind::GroMerge {
                checkpoint: split_if,
                cpu: core,
                absorbed: nx.id.0,
                into: skb.id.0,
                flow: skb.flow_id,
            },
        );
        items.push(("napi_gro_receive", costs.gro_receive(true, nx.len())));
        skb.gro_segs += 1;
        skb.gro_extra_bytes += nx.len();
        skb.payload_len += nx.payload_len;
        skb.flow_seq = nx.flow_seq;
        skb.tcp_seg = nx.tcp_seg;
        skb.psh = nx.psh;
    }
    skb.gro_pending = false;

    items.push((
        "netif_receive_skb",
        SimDuration::from_nanos(costs.netif_receive_ns),
    ));
    let target = match &inner.cfg.server.rps {
        Some(mask) => {
            items.push(("get_rps_cpu", SimDuration::from_nanos(costs.get_rps_cpu_ns)));
            rps_cpu(skb.rx_hash, mask)
        }
        None => core,
    };
    items.push((
        "enqueue_to_backlog",
        SimDuration::from_nanos(costs.enqueue_backlog_ns),
    ));
    skb.record_hop(split_if, core);
    emit_stage(
        inner,
        now,
        split_if,
        core,
        Context::SoftIrq,
        skb.id.0,
        skb.flow_id,
        seq0,
        queued_ns,
        &items,
    );
    (items, vec![NextStep::EnqueueBacklog { cpu: target, skb }])
}

/// Stage B (overlay): outer IP/UDP receive and VXLAN decapsulation.
fn plan_backlog_outer(
    inner: &mut SimInner,
    now: SimTime,
    core: usize,
    mut skb: SkBuff,
) -> (Vec<WorkItem>, Vec<NextStep>) {
    let costs = inner.cfg.server.costs.clone();
    let pnic = inner.machine.ifx.pnic;
    let vxlan = inner.machine.ifx.vxlan;
    let queued_ns = now.saturating_since(skb.queued_at).as_nanos();
    let mut items: Vec<WorkItem> = Vec::with_capacity(8);

    if skb.last_cpu != Some(core) {
        items.push((
            "cache_miss",
            SimDuration::from_nanos(costs.locality_penalty_ns),
        ));
    }
    inner
        .machine
        .order
        .check(skb.flow_id, pnic | STAGE_B_CHECK, skb.flow_seq, 1);
    items.push((
        "process_backlog",
        SimDuration::from_nanos(costs.process_backlog_ns),
    ));
    items.push(("ip_rcv", SimDuration::from_nanos(costs.ip_rcv_ns)));
    items.push(("udp_rcv", SimDuration::from_nanos(costs.udp_rcv_ns)));
    items.push(("vxlan_rcv", costs.vxlan_rcv(skb.total_len())));

    // Decapsulate for real: strip the 50-byte envelope in place (the
    // offset-based decap never borrows, so no copy of the inner frame)
    // and re-dissect.
    let bounds = decap_bounds(&skb.data).expect("overlay frame decaps");
    skb.data.truncate(bounds.inner.end);
    skb.data.drain(..bounds.inner.start);
    let inner_keys = dissect_flow(&skb.data).expect("inner frame dissectable");
    skb.flow = Some(inner_keys);
    skb.rx_hash = inner.machine.flow_hash(&inner_keys);
    skb.dev_ifindex = vxlan;
    skb.record_hop(pnic | STAGE_B_CHECK, core);

    let target = steer(inner, now, &skb, vxlan, core);
    items.push(("netif_rx", SimDuration::from_nanos(costs.netif_rx_ns)));
    emit_stage(
        inner,
        now,
        pnic | STAGE_B_CHECK,
        core,
        Context::SoftIrq,
        skb.id.0,
        skb.flow_id,
        skb.flow_seq,
        queued_ns,
        &items,
    );
    (items, vec![NextStep::EnqueueGroCell { cpu: target, skb }])
}

/// The final stack stage: host stage B, or the container's stage D.
/// IP (with reassembly), UDP/TCP receive, socket queueing, TCP acks.
fn plan_backlog_final(
    inner: &mut SimInner,
    now: SimTime,
    core: usize,
    mut skb: SkBuff,
    check_offset: u32,
) -> (Vec<WorkItem>, Vec<NextStep>) {
    let costs = inner.cfg.server.costs.clone();
    let overlay = inner.cfg.server.mode == NetMode::Overlay;
    let checkpoint = skb.dev_ifindex | check_offset;
    // Captured before reassembly may swap in the prototype fragment's
    // buffer: the stage tracepoint must name the packet that actually
    // occupied the backlog slot.
    let pkt0 = skb.id.0;
    let flow0 = skb.flow_id;
    let seq0 = skb.flow_seq;
    let queued_ns = now.saturating_since(skb.queued_at).as_nanos();
    if check_offset == 0 {
        // Stage D was reached through a steered transition keyed by the
        // veth ifindex.
        steer_arrived(inner, skb.flow_id, skb.dev_ifindex);
    }
    let mut items: Vec<WorkItem> = Vec::with_capacity(8);
    let mut steps: Vec<NextStep> = Vec::with_capacity(2);

    if skb.last_cpu != Some(core) {
        items.push((
            "cache_miss",
            SimDuration::from_nanos(costs.locality_penalty_ns),
        ));
    }
    inner
        .machine
        .order
        .check(skb.flow_id, checkpoint, skb.flow_seq, 1);
    items.push((
        "process_backlog",
        SimDuration::from_nanos(costs.process_backlog_ns),
    ));
    items.push(("ip_rcv", SimDuration::from_nanos(costs.ip_rcv_ns)));
    skb.record_hop(checkpoint, core);

    // IP reassembly for fragmented datagrams.
    if let Some(frag) = skb.frag {
        items.push((
            "ip_defrag",
            SimDuration::from_nanos(costs.ip_defrag_frag_ns),
        ));
        let key = (skb.flow_id, frag.datagram_id);
        let entry = inner.machine.defrag.entry(key).or_insert_with(|| FragAsm {
            got: 0,
            need: frag.count,
            proto: None,
        });
        entry.got += 1;
        if entry.proto.is_none() {
            entry.proto = Some(skb.clone());
        }
        if entry.got < entry.need {
            // Absorbed: wait for the rest.
            emit_stage(
                inner,
                now,
                checkpoint,
                core,
                Context::SoftIrq,
                pkt0,
                flow0,
                seq0,
                queued_ns,
                &items,
            );
            inner.tracer.emit(
                now.as_nanos(),
                EventKind::FragAbsorbed {
                    cpu: core,
                    pkt: pkt0,
                    flow: flow0,
                },
            );
            return (items, steps);
        }
        let asm = inner
            .machine
            .defrag
            .remove(&key)
            .expect("assembly vanished");
        let proto = asm.proto.expect("assembly without prototype");
        // Continue with the reassembled datagram's metadata (payload_len
        // already carries the full datagram size); keep the *latest*
        // flow_seq for monotonicity.
        let seq = skb.flow_seq.max(proto.flow_seq);
        skb = proto;
        skb.flow_seq = seq;
        skb.frag = None;
    }

    let keys = skb.flow.expect("flow keys set before final stage");
    let is_tcp = keys.ip_proto == 6;
    if is_tcp {
        items.push(("tcp_v4_rcv", SimDuration::from_nanos(costs.tcp_rcv_ns)));
        // Accept-forward receiver: dedup what is already delivered,
        // never stall on holes. `tcp_seg` is the *last* segment the
        // (possibly GRO-merged) buffer covers.
        let last_seg = skb.tcp_seg;
        let expected = inner.tcp_expected.entry(skb.flow_id).or_insert(0);
        let deliver = last_seg + 1 > *expected;
        let upto = if deliver {
            *expected = last_seg + 1;
            last_seg
        } else {
            expected.saturating_sub(1)
        };
        items.push((
            "tcp_send_ack",
            SimDuration::from_nanos(costs.tcp_send_ack_ns),
        ));
        if overlay {
            items.push(("vxlan_encap_tx", SimDuration::from_nanos(costs.tx_encap_ns)));
        }
        items.push((
            "dev_queue_xmit",
            SimDuration::from_nanos(costs.tx_driver_ns),
        ));
        steps.push(NextStep::ServerTx(ServerTxMsg {
            flow: skb.flow_id,
            kind: TxKind::Ack { upto },
        }));
        if !deliver {
            emit_stage(
                inner,
                now,
                checkpoint,
                core,
                Context::SoftIrq,
                pkt0,
                flow0,
                seq0,
                queued_ns,
                &items,
            );
            return (items, steps);
        }
    } else {
        items.push(("udp_rcv", SimDuration::from_nanos(costs.udp_rcv_ns)));
    }

    let Some(sock) = inner
        .machine
        .sockets
        .lookup(keys.ip_proto, keys.dst_addr, keys.dst_port)
    else {
        inner.counters.lookup_failures += 1;
        emit_stage(
            inner,
            now,
            checkpoint,
            core,
            Context::SoftIrq,
            pkt0,
            flow0,
            seq0,
            queued_ns,
            &items,
        );
        return (items, steps);
    };
    items.push((
        "sock_queue_rcv_skb",
        SimDuration::from_nanos(costs.sock_queue_ns),
    ));
    steps.push(NextStep::SocketTask { sock, skb });
    emit_stage(
        inner,
        now,
        checkpoint,
        core,
        Context::SoftIrq,
        pkt0,
        flow0,
        seq0,
        queued_ns,
        &items,
    );
    (items, steps)
}

/// Task-context work: user-space delivery and server transmissions.
fn plan_task(
    inner: &mut SimInner,
    now: SimTime,
    core: usize,
    task: TaskWork,
) -> (Vec<WorkItem>, Vec<NextStep>) {
    let costs = inner.cfg.server.costs.clone();
    match task {
        TaskWork::Deliver { sock, mut skb } => {
            let queued_ns = now.saturating_since(skb.queued_at).as_nanos();
            let mut items: Vec<WorkItem> = Vec::with_capacity(4);
            if skb.last_cpu != Some(core) {
                items.push((
                    "cache_miss",
                    SimDuration::from_nanos(costs.locality_penalty_ns),
                ));
            }
            items.push(("copy_to_user", costs.copy_to_user(skb.payload_len)));
            items.push((
                "sock_recvmsg",
                SimDuration::from_nanos(costs.sock_recvmsg_ns),
            ));
            let service = inner.machine.sockets.get(sock).app_service_ns;
            if service > 0 {
                items.push(("app_processing", SimDuration::from_nanos(service)));
            }
            skb.record_hop(DELIVERY_CHECK, core);
            emit_stage(
                inner,
                now,
                DELIVERY_CHECK,
                core,
                Context::Task,
                skb.id.0,
                skb.flow_id,
                skb.flow_seq,
                queued_ns,
                &items,
            );
            (items, vec![NextStep::AppDeliver { sock, skb }])
        }
        TaskWork::ServerSend {
            flow,
            bytes,
            msg_id,
            service_ns,
        } => {
            let overlay = inner.cfg.server.mode == NetMode::Overlay;
            let mut items: Vec<WorkItem> = Vec::with_capacity(4);
            if service_ns > 0 {
                items.push(("app_processing", SimDuration::from_nanos(service_ns)));
            }
            items.push(("sendmsg", costs.tx_sendmsg(bytes)));
            if overlay {
                items.push(("vxlan_encap_tx", SimDuration::from_nanos(costs.tx_encap_ns)));
            }
            items.push((
                "dev_queue_xmit",
                SimDuration::from_nanos(costs.tx_driver_ns),
            ));
            (
                items,
                vec![NextStep::ServerTx(ServerTxMsg {
                    flow,
                    kind: TxKind::Response { msg_id, bytes },
                })],
            )
        }
    }
}

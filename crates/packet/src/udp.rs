//! UDP header codec.

use serde::{Deserialize, Serialize};

use crate::CodecError;

/// Length of a UDP header.
pub const UDP_HDR_LEN: usize = 8;

/// The IANA-assigned VXLAN destination port (RFC 7348).
pub const VXLAN_PORT: u16 = 4789;

/// A UDP header.
///
/// The checksum is carried but not enforced: VXLAN senders commonly
/// transmit with a zero UDP checksum over IPv4 (RFC 7348 §4.1), and the
/// simulation models checksum *cost* in the CPU model rather than in the
/// codec.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpHdr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header plus payload, in bytes.
    pub len: u16,
    /// Checksum (0 = not computed).
    pub checksum: u16,
}

impl UdpHdr {
    /// Serializes the header into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`UDP_HDR_LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..6].copy_from_slice(&self.len.to_be_bytes());
        buf[6..8].copy_from_slice(&self.checksum.to_be_bytes());
    }

    /// Appends the header to a byte vector.
    pub fn push_onto(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + UDP_HDR_LEN, 0);
        self.write(&mut out[start..]);
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<UdpHdr, CodecError> {
        if buf.len() < UDP_HDR_LEN {
            return Err(CodecError::Truncated {
                what: "udp",
                need: UDP_HDR_LEN,
                have: buf.len(),
            });
        }
        let len = u16::from_be_bytes([buf[4], buf[5]]);
        if (len as usize) < UDP_HDR_LEN {
            return Err(CodecError::Malformed {
                what: "udp",
                why: "len < header",
            });
        }
        Ok(UdpHdr {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            len,
            checksum: u16::from_be_bytes([buf[6], buf[7]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = UdpHdr {
            src_port: 5001,
            dst_port: VXLAN_PORT,
            len: 108,
            checksum: 0,
        };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        assert_eq!(buf.len(), UDP_HDR_LEN);
        assert_eq!(UdpHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            UdpHdr::parse(&[0u8; 7]),
            Err(CodecError::Truncated { what: "udp", .. })
        ));
    }

    #[test]
    fn rejects_impossible_length() {
        let hdr = UdpHdr {
            src_port: 1,
            dst_port: 2,
            len: 4,
            checksum: 0,
        };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        assert!(matches!(
            UdpHdr::parse(&buf),
            Err(CodecError::Malformed { what: "udp", .. })
        ));
    }
}

//! Property-based tests of the histogram against a naive exact
//! implementation.

use falcon_metrics::Histogram;
use proptest::prelude::*;

fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    /// Percentiles match the exact answer within the bucketing's 1.6%
    /// relative error.
    #[test]
    fn percentiles_within_relative_error(
        mut values in prop::collection::vec(1u64..10_000_000, 1..500),
        p in prop::sample::select(vec![50.0f64, 90.0, 99.0, 100.0]),
    ) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let exact = exact_percentile(&values, p);
        let approx = h.percentile(p);
        // The bucket's representative is an upper bound with < 1/64
        // relative error.
        prop_assert!(approx >= exact, "approx {approx} < exact {exact}");
        let err = (approx - exact) as f64 / exact.max(1) as f64;
        prop_assert!(err < 1.0 / 64.0 + 1e-9, "error {err}");
    }

    /// Count, min, max and mean are exact.
    #[test]
    fn moments_are_exact(values in prop::collection::vec(0u64..1_000_000, 1..500)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        prop_assert_eq!(h.min(), *values.iter().min().unwrap());
        prop_assert_eq!(h.max(), *values.iter().max().unwrap());
        let mean = values.iter().sum::<u64>() as f64 / values.len() as f64;
        prop_assert!((h.mean() - mean).abs() < 1e-6);
    }

    /// Merging histograms equals recording the concatenation.
    #[test]
    fn merge_equals_concat(
        a in prop::collection::vec(0u64..1_000_000, 0..200),
        b in prop::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let mut ha = Histogram::new();
        let mut hb = Histogram::new();
        let mut hc = Histogram::new();
        for &v in &a {
            ha.record(v);
            hc.record(v);
        }
        for &v in &b {
            hb.record(v);
            hc.record(v);
        }
        ha.merge(&hb);
        prop_assert_eq!(ha.count(), hc.count());
        prop_assert_eq!(ha.min(), hc.min());
        prop_assert_eq!(ha.max(), hc.max());
        for p in [50.0, 99.0] {
            prop_assert_eq!(ha.percentile(p), hc.percentile(p));
        }
    }

    /// Merging per-worker shards is equivalent to recording the whole
    /// stream into one histogram — the property the telemetry sampler
    /// relies on when it folds worker shards into a run-level view.
    #[test]
    fn sharded_recording_merges_to_single(
        values in prop::collection::vec(1u64..10_000_000, 1..400),
        shards in 1usize..6,
    ) {
        let mut single = Histogram::new();
        let mut parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in values.iter().enumerate() {
            single.record(v);
            parts[i % shards].record(v);
        }
        let mut merged = Histogram::new();
        for part in &parts {
            merged.merge(part);
        }
        prop_assert_eq!(merged.count(), single.count());
        prop_assert_eq!(merged.min(), single.min());
        prop_assert_eq!(merged.max(), single.max());
        prop_assert!((merged.mean() - single.mean()).abs() < 1e-6);
        for p in [0.0, 50.0, 90.0, 99.0, 100.0] {
            prop_assert_eq!(merged.percentile(p), single.percentile(p));
        }
    }

    /// An interval view (`delta_since` a snapshot) has bucket-exact
    /// counts and sum: it matches a histogram that recorded only the
    /// suffix, up to the bucketing's relative error on percentiles
    /// (the delta's min/max are bucket representatives, which shifts
    /// the max clamp by at most one bucket width).
    #[test]
    fn delta_since_equals_suffix(
        prefix in prop::collection::vec(1u64..10_000_000, 0..200),
        suffix in prop::collection::vec(1u64..10_000_000, 1..200),
    ) {
        let mut cumulative = Histogram::new();
        for &v in &prefix {
            cumulative.record(v);
        }
        let snapshot = cumulative.clone();
        let mut expect = Histogram::new();
        for &v in &suffix {
            cumulative.record(v);
            expect.record(v);
        }
        let delta = cumulative.delta_since(&snapshot);
        prop_assert_eq!(delta.count(), expect.count());
        prop_assert!((delta.mean() - expect.mean()).abs() < 1e-6);
        for p in [50.0, 99.0, 100.0] {
            let (d, e) = (delta.percentile(p), expect.percentile(p));
            let err = (d as f64 - e as f64).abs() / e.max(1) as f64;
            prop_assert!(err < 1.0 / 64.0 + 1e-9, "p{p}: delta {d} vs suffix {e}");
        }
    }

    /// Percentiles are monotone in p.
    #[test]
    fn percentiles_monotone(values in prop::collection::vec(0u64..1_000_000, 1..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let ps = [0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0];
        for pair in ps.windows(2) {
            prop_assert!(h.percentile(pair[0]) <= h.percentile(pair[1]));
        }
    }
}

//! `falcon-telemetry`: always-available, low-overhead live telemetry
//! for the threaded dataplane.
//!
//! The paper's claim is about *where cycles go* — stage serialization,
//! not per-packet cost, caps overlay throughput — and that claim needs
//! continuous occupancy/stall evidence, not just end-of-run totals.
//! This crate provides the measurement substrate:
//!
//! * [`shard`] — each worker owns a cache-padded, seqlock-protected
//!   telemetry shard: monotonic counters, a five-bucket stall
//!   attribution ([`StallBreakdown`]), per-stage service-time
//!   [`falcon_metrics::Histogram`] shards, and depth-gauge gauges.
//!   Publishing is wait-free for the worker; consistency costs fall
//!   on the reader.
//! * [`sample`] — a [`Sampler`] thread snapshots every shard each
//!   `--telemetry-interval-ms` while the run is in flight.
//! * Exporters: [`jsonl`] streams per-interval deltas to
//!   `BENCH_telemetry.jsonl`; [`prom`] serves Prometheus text
//!   exposition from a tiny TCP listener behind `--prom-addr`;
//!   [`counters`] turns the series into Perfetto counter tracks that
//!   merge into the existing Chrome trace export.
//! * [`meta`] — the [`RunMeta`] provenance header every BENCH
//!   artifact is stamped with.
//!
//! The executor integration (who fills the shards, and what the five
//! stall buckets mean there) lives in `falcon-dataplane`.

pub mod counters;
pub mod jsonl;
pub mod meta;
pub mod prom;
pub mod rx;
pub mod sample;
pub mod shard;

pub use counters::counter_tracks;
pub use meta::RunMeta;
pub use prom::{parse_exposition, scrape, PromMetric, PromServer};
pub use rx::{RxCounters, RxSample};
pub use sample::{Hub, Sampler, SamplerConfig, TelemetryRun, TelemetrySample, DEFAULT_INTERVAL_MS};
pub use shard::{shard_pair, Shard, ShardCounters, ShardWriter, StallBreakdown, WorkerSample};

/// Number of drop-reason counter slots shards are shaped for.
pub const N_DROP_REASONS: usize = falcon_trace::DropReason::ALL.len();

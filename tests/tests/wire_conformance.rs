//! Wire-mode differential conformance: real bytes through real threads.
//!
//! In wire mode every injected descriptor carries an actual
//! VXLAN-encapsulated Ethernet frame, and every stage does its real
//! slice of the kernel's work on those bytes — outer parse and checksum
//! at the pNIC, segment coalescing in the GRO half, offset-based decap
//! at the VXLAN device, FDB lookup at the bridge, inner-checksum verify
//! and payload digest at delivery. The oracle is *differential*: the
//! executor never talks to the frame generator, yet every delivered
//! payload digest must equal what [`FrameFactory`] built for that
//! `(flow, seq)` — across both steering policies, the split-GRO
//! five-stage shape, a sweep grid, and with a chaos corruptor flipping
//! bits on the wire.
//!
//! With corruption on, the books must still close exactly: every
//! flipped frame either dies at the precise stage whose check it broke
//! (counted per stage under `DropReason::Malformed`) or — when the flip
//! lands in a field no stage inspects — delivers with its payload
//! provably untouched. No silent corruption, no double counting.

use falcon_dataplane::{run_scenario, PolicyKind, Scenario, TrafficShape};
use falcon_integration_tests::{assert_dataplane_conforms, assert_wire_conforms};
use falcon_trace::DropReason;

/// A traced wire-mode scenario sized for invariant checking (same
/// shape discipline as `conformance.rs`'s `dp_scenario`).
fn wire_scenario(policy: PolicyKind, workers: usize, flows: u64, packets: u64) -> Scenario {
    Scenario {
        policy,
        workers,
        flows,
        packets,
        payload: 512,
        work_scale_milli: 100,
        inject_gap_ns: 0,
        pin: false,
        oversubscribe: true,
        trace_capacity: 1 << 18,
        wire: true,
        ..Scenario::default()
    }
}

/// Same, on the Figure-13 TCP-4KB split-GRO shape: each injected unit
/// is a whole 4096-byte message arriving as three 1448-byte MSS
/// segments that the GRO half-stage must coalesce back together.
fn wire_split_scenario(policy: PolicyKind, workers: usize, flows: u64, packets: u64) -> Scenario {
    let mut s = wire_scenario(policy, workers, flows, packets);
    s.split_gro = true;
    s.shape = TrafficShape::TcpGro { mss: 1448 };
    s.payload = 4096;
    s
}

/// Corruption off: on the four-stage UDP shape, both steering policies
/// deliver every payload bit-exact, and the strict (malformed-free)
/// conformance helper agrees with the wire-aware one.
#[test]
fn wire_digests_match_generator_under_both_policies() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        let s = wire_scenario(policy, 2, 3, 3_000);
        let out = run_scenario(&s);
        assert!(out.delivered() > 0, "{policy:?} wire run delivered nothing");
        assert_eq!(out.malformed_per_stage().iter().sum::<u64>(), 0);
        assert_dataplane_conforms(&out);
        assert_wire_conforms(&out, s.payload);
    }
}

/// Corruption off, five-stage split-GRO: the GRO half coalesces the MSS
/// segments back into one message per descriptor, and the delivered
/// digest is the digest of the *whole* reassembled message — under both
/// policies, with the per-segment encapsulation overhead visible in
/// `bytes_injected`.
#[test]
fn wire_split_gro_digests_match_whole_messages() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        let s = wire_split_scenario(policy, 3, 2, 1_500);
        let out = run_scenario(&s);
        assert!(
            out.delivered() > 0,
            "{policy:?} split wire run delivered nothing"
        );
        assert_dataplane_conforms(&out);
        assert_wire_conforms(&out, s.payload);
        // Three segments per message, each re-encapsulated: the wire
        // carries strictly more than the application payload.
        assert!(
            out.bytes_injected > out.injected * s.payload as u64,
            "encap + segmentation overhead must show up on the wire"
        );
    }
}

/// Corruption off, a small sweep grid over flows x workers on both
/// policies: the digest oracle holds at every cell.
#[test]
fn wire_sweep_grid_holds_digest_oracle() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        for flows in 1..=2u64 {
            for workers in 1..=2usize {
                let s = wire_scenario(policy, workers, flows, 1_200);
                let out = run_scenario(&s);
                assert!(out.delivered() > 0);
                assert_wire_conforms(&out, s.payload);
            }
        }
    }
}

/// Corruption on: a chaos corruptor flips one bit in ~30 % of wire
/// segments. Every corrupted frame must either be rejected at the exact
/// stage whose verification it broke — counted per stage under
/// `DropReason::Malformed`, with conservation intact — or deliver with
/// a bit-exact payload (the flip landed in a field no stage checks:
/// outer source MAC, VXLAN reserved bytes, a zeroed checksum field).
#[test]
fn wire_corruption_accounts_every_drop_per_stage() {
    let mut s = wire_scenario(PolicyKind::Falcon, 2, 3, 4_000);
    s.corrupt_per_million = 300_000;
    s.wire_seed = 7;
    let out = run_scenario(&s);
    assert!(out.corrupted_segments > 0, "the corruptor never fired");
    let malformed = out.drops_by_reason()[DropReason::Malformed.index()];
    assert!(malformed > 0, "30 % corruption must kill some frames");
    assert!(out.delivered() > 0, "most frames must still get through");
    assert_wire_conforms(&out, s.payload);
}

/// Corruption and chaos steering together, on the five-stage split
/// shape: forced migrations hammer the in-flight guard while malformed
/// segments drop mid-GRO, and the order audit plus the per-stage books
/// must still come out exact.
#[test]
fn wire_corruption_survives_chaos_steering_on_split_shape() {
    let mut s = wire_split_scenario(PolicyKind::Falcon, 3, 2, 1_500);
    s.corrupt_per_million = 200_000;
    s.wire_seed = 21;
    s.chaos_steer_period = 2;
    let out = run_scenario(&s);
    assert!(out.corrupted_segments > 0, "the corruptor never fired");
    assert!(out.delivered() > 0);
    assert!(
        out.drops_by_reason()[DropReason::Malformed.index()] > 0,
        "corrupting 20 % of segments must break some coalesces"
    );
    assert_wire_conforms(&out, s.payload);
}

/// The `--sweep --wire` artifact path end-to-end: the experiments
/// crate's grid runner carries wire bytes at every cell, audits zero
/// reorder violations, and reports non-zero goodput for both engines.
#[test]
fn wire_sweep_artifact_carries_bytes_and_audits_clean() {
    use falcon_experiments::dataplane::run_sweep;
    use falcon_experiments::measure::Scale;
    let sweep = run_sweep(Scale::Quick, 2, 2, false, 0, true, None, false);
    assert_eq!(sweep.points.len(), 4, "2 flows x 2 workers");
    assert_eq!(sweep.total_reorder_violations(), 0);
    for p in &sweep.points {
        for r in [&p.comparison.vanilla, &p.comparison.falcon] {
            assert!(r.wire, "sweep cell lost the wire flag");
            assert!(r.bytes_in > 0, "sweep cell injected no bytes");
            assert!(r.bytes_out > 0, "sweep cell delivered no bytes");
            assert!(r.goodput_gbps > 0.0);
            assert_eq!(r.delivered + r.dropped, r.injected);
        }
    }
}

//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the API surface the `falcon-bench` suite uses. Each
//! bench runs a short warm-up followed by a bounded measurement loop
//! and prints one line with the mean iteration time (and throughput
//! when configured). The heavyweight statistics, plotting, and CLI of
//! the real crate are intentionally absent; the goal is that `cargo
//! bench` runs the same closures and reports comparable mean timings.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Upper bound on measured iterations per bench, so simulation-heavy
/// benches stay quick even when `measurement_time` is generous.
const MAX_ITERS: u64 = 200;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(200),
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(name);
        group.bench_function(name, f);
        group.finish();
    }
}

/// A named group of benches sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    warm_up: Duration,
    measurement: Duration,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        // Cap so full-simulation benches stay fast in this environment.
        self.warm_up = t.min(Duration::from_millis(100));
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement = t.min(Duration::from_millis(300));
        self
    }

    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            budget: self.warm_up,
            max_iters: 3,
            iters: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        bencher.budget = self.measurement;
        bencher.max_iters = MAX_ITERS;
        bencher.iters = 0;
        bencher.elapsed = Duration::ZERO;
        f(&mut bencher);
        let mean_ns = if bencher.iters > 0 {
            bencher.elapsed.as_nanos() as f64 / bencher.iters as f64
        } else {
            0.0
        };
        let rate = match self.throughput {
            Some(Throughput::Bytes(bytes)) if mean_ns > 0.0 => {
                let mbps = bytes as f64 / mean_ns * 1e3;
                format!("  {mbps:.1} MB/s")
            }
            Some(Throughput::Elements(n)) if mean_ns > 0.0 => {
                let eps = n as f64 / mean_ns * 1e9;
                format!("  {eps:.0} elem/s")
            }
            _ => String::new(),
        };
        println!(
            "  {name}: {mean_ns:.1} ns/iter ({} iters){rate}",
            bencher.iters
        );
        self
    }

    pub fn finish(&mut self) {}
}

/// Runs the measured closure.
pub struct Bencher {
    budget: Duration,
    max_iters: u64,
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        loop {
            let t0 = Instant::now();
            black_box(f());
            self.elapsed += t0.elapsed();
            self.iters += 1;
            if self.iters >= self.max_iters || start.elapsed() >= self.budget {
                break;
            }
        }
    }
}

/// Declares a group-runner function over bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($f:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $f(&mut criterion); )+
        }
    };
}

/// Declares `main` over group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

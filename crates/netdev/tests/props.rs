//! Property-based tests of the device substrate.

use falcon_netdev::wire::Dir;
use falcon_netdev::{Backlogs, LinkSpeed, RxRing, Wire};
use falcon_packet::{PacketId, SkBuff};
use falcon_simcore::{SimDuration, SimTime};
use proptest::prelude::*;

fn skb(id: u64) -> SkBuff {
    SkBuff::new(PacketId(id), vec![0u8; 60])
}

proptest! {
    /// The ring is an exact FIFO with exact drop accounting.
    #[test]
    fn ring_is_fifo_with_exact_drops(capacity in 1usize..64, pushes in 1u64..200) {
        let mut ring = RxRing::new(capacity);
        let mut accepted = Vec::new();
        for i in 0..pushes {
            if ring.push(skb(i)) {
                accepted.push(i);
            }
        }
        prop_assert_eq!(ring.enqueued() as usize, accepted.len());
        prop_assert_eq!(ring.dropped(), pushes - accepted.len() as u64);
        for &id in &accepted {
            prop_assert_eq!(ring.pop().unwrap().id, PacketId(id));
        }
        prop_assert!(ring.pop().is_none());
    }

    /// Wire arrivals are strictly monotone per direction and respect
    /// serialization delay.
    #[test]
    fn wire_is_causal(
        sizes in prop::collection::vec(60usize..9000, 1..50),
        speed in prop::sample::select(vec![LinkSpeed::TenGbit, LinkSpeed::HundredGbit]),
    ) {
        let mut wire = Wire::new(speed, SimDuration::from_nanos(500));
        let mut last = SimTime::ZERO;
        let mut now = SimTime::ZERO;
        for (i, &size) in sizes.iter().enumerate() {
            now += SimDuration::from_nanos((i as u64 * 37) % 500);
            let arrival = wire.transmit(Dir::AtoB, now, size);
            prop_assert!(arrival > last, "arrivals must be strictly increasing");
            // No frame can arrive before its own serialization +
            // propagation from its send time.
            let min = now + wire.serialization_delay(size) + SimDuration::from_nanos(500);
            prop_assert!(arrival >= min);
            last = arrival;
        }
    }

    /// Backlogs raise exactly one softirq per idle->busy transition.
    #[test]
    fn backlog_raises_once_per_burst(burst_sizes in prop::collection::vec(1usize..20, 1..20)) {
        let mut backlogs = Backlogs::new(1, 10_000);
        let mut raises = 0usize;
        let mut id = 0u64;
        let n_bursts = burst_sizes.len();
        for burst in burst_sizes {
            for _ in 0..burst {
                let (accepted, need) = backlogs.enqueue(0, skb(id));
                prop_assert!(accepted);
                if need {
                    raises += 1;
                }
                id += 1;
            }
            // Drain and complete, like the softirq would.
            while backlogs.dequeue(0).is_some() {}
            backlogs.napi_complete(0);
        }
        prop_assert_eq!(raises, n_bursts);
    }
}

#[test]
fn backlog_one_raise_per_burst_exact() {
    let mut backlogs = Backlogs::new(1, 100);
    for burst in [1usize, 5, 3] {
        let mut raises = 0;
        for i in 0..burst {
            let (_, need) = backlogs.enqueue(0, skb(i as u64));
            if need {
                raises += 1;
            }
        }
        assert_eq!(raises, 1, "exactly one raise per idle burst");
        while backlogs.dequeue(0).is_some() {}
        backlogs.napi_complete(0);
    }
}

//! Figure 18: data caching (memcached) latency.
//!
//! 1 vs 10 client threads at a fixed per-connection request rate.
//! Expected shape: with one client both configurations are comparable
//! (slight Falcon tail advantage); with ten clients the vanilla
//! overlay's hash-hot cores queue and Falcon cuts average and p99
//! latency by half or more.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_netdev::{LinkSpeed, NicConfig};
use falcon_netstack::KernelVersion;
use falcon_workloads::{DataCaching, DataCachingConfig};

use crate::measure::{run_measured, RunStats, Scale};
use crate::scenario::{Mode, Scenario};
use crate::table::{us, FigResult, Table};

fn run_case(falcon_on: bool, threads: usize, scale: Scale) -> RunStats {
    // Vanilla gets all six receive cores as its RPS mask; Falcon keeps
    // RPS on the four IRQ cores and dedicates cores 4-7 to pipelined
    // stages ("we used dedicated cores in FALCON_CPUS", §6.1) — the
    // stage demand then cannot stack onto the already-loaded IRQ cores.
    let mode = if falcon_on {
        Mode::Falcon(FalconConfig::new(CpuSet::range(4, 8)))
    } else {
        Mode::Vanilla
    };
    let scenario =
        Scenario::multi_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit).tweak(|stack| {
            stack.nic = NicConfig::multi_queue(4, 1024, 4);
            stack.rps = Some(if falcon_on {
                CpuSet::range(0, 4)
            } else {
                CpuSet::range(0, 6)
            });
        });
    let mut dc = DataCachingConfig::open_loop(threads, 13_500.0);
    dc.app_cores = vec![8, 9, 10, 11, 12, 13];
    let mut runner = scenario.build(Box::new(DataCaching::new(dc)));
    run_measured(&mut runner, scale)
}

/// Average and p99 request latency for 1 and 10 client threads.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig18",
        "Data caching (memcached, 550B objects): request latency",
    );
    let mut t = Table::new(&[
        "clients",
        "Con avg us",
        "Falcon avg us",
        "Con p99 us",
        "Falcon p99 us",
        "p99 reduction",
    ]);
    for threads in [1usize, 10] {
        let con = run_case(false, threads, scale);
        let fal = run_case(true, threads, scale);
        let c99 = con.rtt.percentile(99.0);
        let f99 = fal.rtt.percentile(99.0);
        t.row(vec![
            threads.to_string(),
            us(con.rtt.mean() as u64),
            us(fal.rtt.mean() as u64),
            us(c99),
            us(f99),
            format!("{:.0}%", (1.0 - f99 as f64 / c99.max(1) as f64) * 100.0),
        ]);
        if threads == 10 {
            fig.note(format!(
                "10 clients: Falcon reduces avg by {:.0}%, p99 by {:.0}% (paper: 51% and 53%)",
                (1.0 - fal.rtt.mean() / con.rtt.mean().max(1.0)) * 100.0,
                (1.0 - f99 as f64 / c99.max(1) as f64) * 100.0
            ));
        }
    }
    fig.panel("", t);
    fig
}

//! The physical link: bandwidth serialization plus propagation delay.
//!
//! A frame of `n` wire bytes occupies the link for `n * 8 / bandwidth`
//! seconds; frames queue behind each other per direction (the link is
//! full duplex). The paper's testbed uses two direct links — an Intel
//! X550T 10 GbE and a Mellanox ConnectX-5 100 GbE — modelled by
//! [`LinkSpeed::TenGbit`] and [`LinkSpeed::HundredGbit`].

use falcon_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Link speeds used in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkSpeed {
    /// Intel X550T 10-Gigabit Ethernet ("10G" in the figures).
    TenGbit,
    /// Mellanox ConnectX-5 EN 100-Gigabit Ethernet ("100G").
    HundredGbit,
}

impl LinkSpeed {
    /// Bits per second.
    pub fn bits_per_sec(self) -> u64 {
        match self {
            LinkSpeed::TenGbit => 10_000_000_000,
            LinkSpeed::HundredGbit => 100_000_000_000,
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            LinkSpeed::TenGbit => "10G",
            LinkSpeed::HundredGbit => "100G",
        }
    }
}

/// Direction of travel on a full-duplex wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Machine 0 to machine 1.
    AtoB,
    /// Machine 1 to machine 0.
    BtoA,
}

/// A full-duplex point-to-point link.
#[derive(Debug, Clone)]
pub struct Wire {
    speed: LinkSpeed,
    propagation: SimDuration,
    next_free: [SimTime; 2],
}

impl Wire {
    /// Creates a link of the given speed with a propagation delay
    /// (~500 ns models the short direct cables plus PHY latency of the
    /// paper's back-to-back testbed).
    pub fn new(speed: LinkSpeed, propagation: SimDuration) -> Self {
        Wire {
            speed,
            propagation,
            next_free: [SimTime::ZERO; 2],
        }
    }

    /// Link speed.
    pub fn speed(&self) -> LinkSpeed {
        self.speed
    }

    /// Time to serialize `wire_bytes` onto the link.
    pub fn serialization_delay(&self, wire_bytes: usize) -> SimDuration {
        let bits = wire_bytes as u64 * 8;
        // ns = bits / (bits/s) * 1e9, computed without overflow.
        SimDuration::from_nanos(bits * 1_000_000_000 / self.speed.bits_per_sec())
    }

    /// Transmits a frame in `dir` starting no earlier than `now`;
    /// returns the time the last bit arrives at the far end.
    ///
    /// The sender's NIC queues frames back to back, so transmission
    /// begins when the previous frame in this direction has left the
    /// wire.
    pub fn transmit(&mut self, dir: Dir, now: SimTime, wire_bytes: usize) -> SimTime {
        let idx = match dir {
            Dir::AtoB => 0,
            Dir::BtoA => 1,
        };
        let start = now.max(self.next_free[idx]);
        let done_sending = start + self.serialization_delay(wire_bytes);
        self.next_free[idx] = done_sending;
        done_sending + self.propagation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serialization_scales_with_speed() {
        let w10 = Wire::new(LinkSpeed::TenGbit, SimDuration::ZERO);
        let w100 = Wire::new(LinkSpeed::HundredGbit, SimDuration::ZERO);
        // 1250 bytes = 10_000 bits: 1 us at 10G, 100 ns at 100G.
        assert_eq!(w10.serialization_delay(1250).as_nanos(), 1_000);
        assert_eq!(w100.serialization_delay(1250).as_nanos(), 100);
    }

    #[test]
    fn frames_queue_behind_each_other() {
        let mut w = Wire::new(LinkSpeed::TenGbit, SimDuration::from_nanos(500));
        let t0 = SimTime::ZERO;
        let a1 = w.transmit(Dir::AtoB, t0, 1250);
        let a2 = w.transmit(Dir::AtoB, t0, 1250);
        assert_eq!(a1.as_nanos(), 1_500);
        assert_eq!(a2.as_nanos(), 2_500, "second frame waits for the first");
    }

    #[test]
    fn directions_are_independent() {
        let mut w = Wire::new(LinkSpeed::TenGbit, SimDuration::ZERO);
        let a = w.transmit(Dir::AtoB, SimTime::ZERO, 1250);
        let b = w.transmit(Dir::BtoA, SimTime::ZERO, 1250);
        assert_eq!(a, b, "full duplex: reverse direction does not queue");
    }

    #[test]
    fn idle_wire_resets_queueing() {
        let mut w = Wire::new(LinkSpeed::TenGbit, SimDuration::ZERO);
        w.transmit(Dir::AtoB, SimTime::ZERO, 1250);
        // Much later, no queueing applies.
        let late = SimTime::from_millis(1);
        let arr = w.transmit(Dir::AtoB, late, 1250);
        assert_eq!(arr, late + SimDuration::from_micros(1));
    }

    #[test]
    fn labels() {
        assert_eq!(LinkSpeed::TenGbit.label(), "10G");
        assert_eq!(LinkSpeed::HundredGbit.label(), "100G");
        assert!(LinkSpeed::HundredGbit.bits_per_sec() == 10 * LinkSpeed::TenGbit.bits_per_sec());
    }
}

//! Figure 5: serialization of softirqs and load imbalance.
//!
//! Per-core CPU utilization stacked by context for single-flow and
//! multi-flow UDP at fixed rates. Expected shape: the overlay's softirq
//! time piles onto a single core per flow; multi-flow tests cannot use
//! more cores than flows, and hash collisions leave cores unevenly
//! loaded.

use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, RunStats, Scale};
use crate::scenario::{Mode, Scenario, MF_APP_CORES, SF_APP_CORE};
use crate::table::{pct, FigResult, Table};

fn run_case(mode: Mode, n_flows: usize, rate: f64, scale: Scale) -> RunStats {
    let (scenario, app_cores) = if n_flows == 1 {
        (
            Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit),
            vec![SF_APP_CORE],
        )
    } else {
        (
            Scenario::multi_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit),
            MF_APP_CORES.to_vec(),
        )
    };
    let mut cfg = if n_flows == 1 {
        UdpStressConfig::single_flow(16)
    } else {
        UdpStressConfig::multi_flow(n_flows, 16)
    };
    cfg.pacing = Pacing::FixedPps(rate / n_flows as f64);
    cfg.senders_per_flow = 1;
    cfg.app_cores = app_cores;
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    run_measured(&mut runner, scale)
}

fn core_table(stats: &RunStats) -> Table {
    let mut t = Table::new(&["core", "hardirq", "softirq", "task", "busy"]);
    for (core, share) in stats.cores.iter().enumerate() {
        if share.busy() < 0.01 {
            continue;
        }
        t.row(vec![
            core.to_string(),
            pct(share.hardirq),
            pct(share.softirq),
            pct(share.task),
            pct(share.busy()),
        ]);
    }
    t
}

/// Per-core utilization under fixed single- and multi-flow UDP loads.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig5",
        "Softirq serialization and load imbalance (CPU% per core)",
    );

    for (label, mode) in [("Host", Mode::Host), ("Con", Mode::Vanilla)] {
        let stats = run_case(mode.clone(), 1, 250_000.0, scale);
        fig.panel(
            &format!("single flow 250kpps — {label}"),
            core_table(&stats),
        );
        if label == "Con" {
            let max_softirq = stats.cores.iter().map(|c| c.softirq).fold(0.0f64, f64::max);
            fig.note(format!(
                "overlay stacks {:.0}% softirq on one core for a single flow",
                max_softirq * 100.0
            ));
        }
    }

    for (label, mode) in [("Host", Mode::Host), ("Con", Mode::Vanilla)] {
        let stats = run_case(mode.clone(), 5, 900_000.0, scale);
        fig.panel(
            &format!("five flows 900kpps total — {label}"),
            core_table(&stats),
        );
    }
    fig.note("multi-flow softirq work concentrates on at most one core per flow");
    fig
}

//! falcon-wire: real byte-level packets for the threaded dataplane.
//!
//! The executor's pipeline stages model the paper's receive path as
//! calibrated busy-spin costs. This crate supplies the *bytes*: a
//! [`FrameFactory`] that builds deterministic inner UDP/TCP frames and
//! VXLAN-encapsulates them, the per-stage verification work each
//! pipeline hop performs on those bytes ([`stage`]), the strict bridge
//! [`Fdb`], and a seeded [`Corruptor`] that flips bits at a configured
//! rate so malformed-frame handling can be tested with exact per-stage
//! drop accounting.
//!
//! The split of responsibilities with `falcon-dataplane`: this crate
//! knows frames and nothing about threads, rings, or steering; the
//! executor calls [`stage`] functions inside its stage budget and maps
//! [`stage::WireError`] to `DropReason::Malformed`.

pub mod cache;
pub mod conn;
pub mod corrupt;
pub mod factory;
pub mod fdb;
pub mod stage;

pub use cache::{flow_cache_key, full_verdict, CacheStats, FlowCache, Lookup, Verdict};
pub use conn::{conn_observe, ConnObservation};
pub use corrupt::Corruptor;
pub use factory::{FrameFactory, SlabFrameBuilder};
pub use fdb::{Fdb, SharedFdb};
pub use stage::{bridge_lookup, deliver_verify, gro_coalesce, pnic_verify, vxlan_decap};
pub use stage::{Delivery, WireError};

/// Bytes a pipeline stage just touched when it ran over `buf`: the
/// full on-wire length while the packet is still encapsulated, the
/// decapsulated inner frame after the VXLAN stage has run. Telemetry's
/// per-stage byte counters are fed from this, so the exported
/// byte-per-stage series shrinks at decap exactly like the real
/// receive path's `skb->len` does.
pub fn stage_touched_bytes(buf: &falcon_packet::WireBuf) -> u64 {
    buf.inner_frame()
        .map_or_else(|| buf.wire_bytes(), |f| f.len() as u64)
}

/// Seed of the delivery digest. Matches nothing else in the tree on
/// purpose — it digests application payload, not trace hops.
const DIGEST_SEED: u64 = 0xcbf2_9ce4_8422_2325;

/// The delivery digest: an 8-byte-chunk mixing hash over the payload
/// (see [`falcon_packet::mix`]). Replaced byte-at-a-time FNV-1a — same
/// role, same collision-test behaviour, ~8x fewer loop iterations over
/// an MTU frame. Every producer and consumer of digests (generator
/// oracle, delivery stage, conformance checks) calls this one function,
/// so the value change is invisible to the differential oracles.
pub fn payload_digest(bytes: &[u8]) -> u64 {
    falcon_packet::mix64(DIGEST_SEED, bytes)
}

/// Byte-at-a-time differential reference for [`payload_digest`]:
/// identical output, scalar lane assembly.
pub fn payload_digest_scalar(bytes: &[u8]) -> u64 {
    falcon_packet::mix64_scalar(DIGEST_SEED, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_bytes_shrink_at_decap() {
        let mut buf = falcon_packet::WireBuf::single(vec![0u8; 120]);
        assert_eq!(stage_touched_bytes(&buf), 120);
        buf.inner = Some(50..120);
        assert_eq!(stage_touched_bytes(&buf), 70);
    }

    #[test]
    fn digest_distinguishes_payloads() {
        assert_eq!(payload_digest(b"abc"), payload_digest(b"abc"));
        assert_ne!(payload_digest(b"abc"), payload_digest(b"abd"));
        assert_ne!(payload_digest(b""), payload_digest(b"\0"));
    }
}

//! [`FrameFactory`]: deterministic generation of real overlay frames.
//!
//! Every frame the wire-mode dataplane injects is a pure function of
//! `(flow, seq)`, so a conformance checker can regenerate the exact
//! bytes — and therefore the exact delivery digest — without any side
//! channel from the injector to the verifier. That is what makes the
//! differential check "every delivered payload equals its generated
//! inner frame" possible across threads, steering policies, and chaos.

use falcon_khash::FlowKeys;
use falcon_packet::encap::{
    build_tcp_frame, build_tcp_frame_into, build_udp_frame, build_udp_frame_into, fill_l4_checksum,
    vxlan_encapsulate, vxlan_encapsulate_into, EncapParams, VXLAN_OVERHEAD,
};
use falcon_packet::{Ipv4Addr4, MacAddr, SlabPool, TcpFlags, WireBuf};

use crate::payload_digest;

/// Builds deterministic inner frames and their VXLAN envelopes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameFactory {
    /// The overlay segment every generated packet belongs to.
    pub vni: u32,
}

impl Default for FrameFactory {
    fn default() -> Self {
        FrameFactory { vni: 42 }
    }
}

impl FrameFactory {
    /// A factory for the given VNI.
    pub fn new(vni: u32) -> Self {
        FrameFactory { vni }
    }

    /// The receiving host NIC's MAC: the pNIC stage drops outer frames
    /// not addressed to it.
    pub fn host_mac() -> MacAddr {
        MacAddr::from_index(0xFA1C)
    }

    /// Outer (host-network) envelope parameters for a flow. The source
    /// port carries per-flow entropy the way real VXLAN senders derive
    /// it from the inner flow hash.
    pub fn encap_params(&self, flow: u64) -> EncapParams {
        EncapParams {
            src_mac: MacAddr::from_index(0x5000 + (flow & 0xFFFF)),
            dst_mac: Self::host_mac(),
            src_ip: Ipv4Addr4::new(192, 168, (flow >> 8) as u8, flow as u8),
            dst_ip: Ipv4Addr4::new(192, 168, 255, 1),
            src_port: 49152 + (flow % 16384) as u16,
            vni: self.vni,
        }
    }

    /// Inner (container) source and destination MACs for a flow — the
    /// addresses the bridge's FDB must know.
    pub fn inner_macs(&self, flow: u64) -> (MacAddr, MacAddr) {
        (
            MacAddr::from_index(0x1_0000 + 2 * (flow & 0x7FFF)),
            MacAddr::from_index(0x1_0001 + 2 * (flow & 0x7FFF)),
        )
    }

    /// Inner flow keys (the container-to-container 5-tuple).
    pub fn inner_keys(&self, flow: u64, tcp: bool) -> FlowKeys {
        let src = Ipv4Addr4::new(10, 1, (flow >> 8) as u8, flow as u8).0;
        let dst = Ipv4Addr4::new(10, 2, 0, 1).0;
        let src_port = 40000 + (flow % 20000) as u16;
        if tcp {
            FlowKeys::tcp(src, src_port, dst, 5201)
        } else {
            FlowKeys::udp(src, src_port, dst, 8080)
        }
    }

    /// The deterministic payload of message `(flow, seq)`.
    pub fn payload(flow: u64, seq: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        Self::payload_into(&mut out, flow, seq, len);
        out
    }

    /// [`FrameFactory::payload`] into a reused buffer — the zero-alloc
    /// generation path. Clears `out` first; capacity is retained across
    /// calls.
    pub fn payload_into(out: &mut Vec<u8>, flow: u64, seq: u64, len: usize) {
        let mut state = (flow << 32) ^ seq ^ 0x9E37_79B9_7F4A_7C15;
        out.clear();
        out.extend((0..len).map(|_| {
            // xorshift64*: cheap, deterministic, byte-position mixed.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 56) as u8
        }));
    }

    /// The TCP sequence number of the first byte of message `seq`.
    fn tcp_seq0(seq: u64, msg_len: usize) -> u32 {
        (seq.wrapping_mul(msg_len as u64)) as u32
    }

    /// The canonical inner frame of message `(flow, seq)`: what the
    /// veth end must hand to the container, byte for byte. For TCP
    /// this is the *coalesced* frame — one header over the whole
    /// message payload — which GRO must reconstruct exactly.
    pub fn inner_frame(&self, tcp: bool, flow: u64, seq: u64, payload_len: usize) -> Vec<u8> {
        let (src_mac, dst_mac) = self.inner_macs(flow);
        let keys = self.inner_keys(flow, tcp);
        let payload = Self::payload(flow, seq, payload_len);
        let mut frame = if tcp {
            build_tcp_frame(
                src_mac,
                dst_mac,
                &keys,
                Self::tcp_seq0(seq, payload_len),
                0,
                TcpFlags::data(),
                0xFFFF,
                &payload,
            )
        } else {
            build_udp_frame(src_mac, dst_mac, &keys, &payload)
        };
        fill_l4_checksum(&mut frame).expect("generated frame has a valid L4 layout");
        frame
    }

    /// Wire segments of a UDP message: one encapsulated frame.
    pub fn udp_wire(&self, flow: u64, seq: u64, payload_len: usize) -> Vec<Vec<u8>> {
        let inner = self.inner_frame(false, flow, seq, payload_len);
        vec![vxlan_encapsulate(&inner, &self.encap_params(flow))]
    }

    /// Wire segments of a TCP message: the payload cut into MSS-sized
    /// segments, each with its own headers and envelope, exactly as a
    /// sender's TSO would emit them. The GRO stage coalesces them back
    /// into [`FrameFactory::inner_frame`].
    pub fn tcp_wire(&self, flow: u64, seq: u64, msg_len: usize, mss: usize) -> Vec<Vec<u8>> {
        assert!(mss > 0, "mss must be positive");
        let (src_mac, dst_mac) = self.inner_macs(flow);
        let keys = self.inner_keys(flow, true);
        let params = self.encap_params(flow);
        let payload = Self::payload(flow, seq, msg_len);
        let seq0 = Self::tcp_seq0(seq, msg_len);
        let mut segs = Vec::new();
        let mut off = 0usize;
        while off < msg_len || (msg_len == 0 && segs.is_empty()) {
            let take = mss.min(msg_len - off);
            let mut inner = build_tcp_frame(
                src_mac,
                dst_mac,
                &keys,
                seq0.wrapping_add(off as u32),
                0,
                TcpFlags::data(),
                0xFFFF,
                &payload[off..off + take],
            );
            fill_l4_checksum(&mut inner).expect("generated segment has a valid L4 layout");
            segs.push(vxlan_encapsulate(&inner, &params));
            off += take;
            if take == 0 {
                break;
            }
        }
        segs
    }

    /// One encapsulated TCP segment with explicit control flags — the
    /// connection-lifecycle traffic (SYN/FIN/RST) the conntrack
    /// conformance tests inject. Single segment on purpose: control
    /// segments are never TSO'd, so they pass GRO untouched.
    pub fn tcp_ctrl_wire(
        &self,
        flow: u64,
        seq: u64,
        payload_len: usize,
        flags: TcpFlags,
    ) -> Vec<u8> {
        let (src_mac, dst_mac) = self.inner_macs(flow);
        let keys = self.inner_keys(flow, true);
        let payload = Self::payload(flow, seq, payload_len);
        let mut inner = build_tcp_frame(
            src_mac,
            dst_mac,
            &keys,
            Self::tcp_seq0(seq, payload_len),
            0,
            flags,
            0xFFFF,
            &payload,
        );
        fill_l4_checksum(&mut inner).expect("generated frame has a valid L4 layout");
        vxlan_encapsulate(&inner, &self.encap_params(flow))
    }

    /// Digest of the payload the container must receive for message
    /// `(flow, seq)` — the conformance oracle.
    pub fn expected_digest(flow: u64, seq: u64, payload_len: usize) -> u64 {
        payload_digest(&Self::payload(flow, seq, payload_len))
    }
}

/// Zero-alloc wire-frame builder: the same deterministic frames as
/// [`FrameFactory::udp_wire`]/[`FrameFactory::tcp_wire`], but built in
/// place inside pool-leased slab slots instead of fresh heap vectors.
///
/// The payload and inner frame are staged in two scratch buffers owned
/// by the builder (their capacity is retained across packets), and the
/// encapsulated result is written directly into a [`SlabPool`] slot.
/// The returned `Box<WireBuf>` is a recycled pool shell, so steady-state
/// generation performs no allocator calls at all — the differential
/// oracles can't tell: the bytes are identical to the heap path.
#[derive(Debug, Default)]
pub struct SlabFrameBuilder {
    factory: FrameFactory,
    payload: Vec<u8>,
    inner: Vec<u8>,
}

impl SlabFrameBuilder {
    /// A builder emitting the same frames as `factory`.
    pub fn new(factory: FrameFactory) -> Self {
        SlabFrameBuilder {
            factory,
            payload: Vec::new(),
            inner: Vec::new(),
        }
    }

    /// The wire buffer of a UDP message, built in leased slots.
    /// Byte-identical to [`FrameFactory::udp_wire`].
    pub fn udp_wire(
        &mut self,
        pool: &mut SlabPool,
        flow: u64,
        seq: u64,
        payload_len: usize,
    ) -> Box<WireBuf> {
        let (src_mac, dst_mac) = self.factory.inner_macs(flow);
        let keys = self.factory.inner_keys(flow, false);
        FrameFactory::payload_into(&mut self.payload, flow, seq, payload_len);
        build_udp_frame_into(&mut self.inner, src_mac, dst_mac, &keys, &self.payload);
        fill_l4_checksum(&mut self.inner).expect("generated frame has a valid L4 layout");
        let params = self.factory.encap_params(flow);
        let mut seg = pool.acquire(self.inner.len() + VXLAN_OVERHEAD);
        vxlan_encapsulate_into(seg.vec_mut(), &self.inner, &params);
        let mut buf = pool.lease_shell();
        buf.segs.push(seg);
        buf
    }

    /// The wire buffer of a TCP message — MSS-sized segments, one
    /// leased slot each. Byte-identical to [`FrameFactory::tcp_wire`].
    pub fn tcp_wire(
        &mut self,
        pool: &mut SlabPool,
        flow: u64,
        seq: u64,
        msg_len: usize,
        mss: usize,
    ) -> Box<WireBuf> {
        assert!(mss > 0, "mss must be positive");
        let (src_mac, dst_mac) = self.factory.inner_macs(flow);
        let keys = self.factory.inner_keys(flow, true);
        let params = self.factory.encap_params(flow);
        FrameFactory::payload_into(&mut self.payload, flow, seq, msg_len);
        let seq0 = FrameFactory::tcp_seq0(seq, msg_len);
        let mut buf = pool.lease_shell();
        let mut off = 0usize;
        while off < msg_len || (msg_len == 0 && buf.segs.is_empty()) {
            let take = mss.min(msg_len - off);
            build_tcp_frame_into(
                &mut self.inner,
                src_mac,
                dst_mac,
                &keys,
                seq0.wrapping_add(off as u32),
                0,
                TcpFlags::data(),
                0xFFFF,
                &self.payload[off..off + take],
            );
            fill_l4_checksum(&mut self.inner).expect("generated segment has a valid L4 layout");
            let mut seg = pool.acquire(self.inner.len() + VXLAN_OVERHEAD);
            vxlan_encapsulate_into(seg.vec_mut(), &self.inner, &params);
            buf.segs.push(seg);
            off += take;
            if take == 0 {
                break;
            }
        }
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_packet::encap::{decap_bounds, dissect_flow, verify_l4_checksum};

    #[test]
    fn generation_is_deterministic() {
        let f = FrameFactory::new(7);
        assert_eq!(f.udp_wire(3, 9, 256), f.udp_wire(3, 9, 256));
        assert_eq!(f.tcp_wire(3, 9, 4096, 1448), f.tcp_wire(3, 9, 4096, 1448));
        assert_ne!(f.udp_wire(3, 9, 256), f.udp_wire(3, 10, 256));
        assert_ne!(
            FrameFactory::payload(1, 2, 64),
            FrameFactory::payload(2, 1, 64)
        );
    }

    #[test]
    fn udp_wire_decaps_to_canonical_inner() {
        let f = FrameFactory::default();
        let segs = f.udp_wire(5, 17, 300);
        assert_eq!(segs.len(), 1);
        let b = decap_bounds(&segs[0]).unwrap();
        assert_eq!(b.vni, f.vni);
        let inner = &segs[0][b.inner];
        assert_eq!(inner, &f.inner_frame(false, 5, 17, 300)[..]);
        verify_l4_checksum(inner).unwrap();
        assert_eq!(dissect_flow(inner).unwrap(), f.inner_keys(5, false));
    }

    #[test]
    fn tcp_wire_segments_cover_message_contiguously() {
        let f = FrameFactory::default();
        let (msg, mss) = (4096usize, 1448usize);
        let segs = f.tcp_wire(2, 3, msg, mss);
        assert_eq!(segs.len(), msg.div_ceil(mss));
        let mut reassembled = Vec::new();
        let mut expect_seq = FrameFactory::tcp_seq0(3, msg);
        for seg in &segs {
            let b = decap_bounds(seg).unwrap();
            let inner = &seg[b.inner];
            verify_l4_checksum(inner).unwrap();
            let tcp = falcon_packet::TcpHdr::parse(&inner[34..]).unwrap();
            assert_eq!(tcp.seq, expect_seq);
            let payload = &inner[54..];
            expect_seq = expect_seq.wrapping_add(payload.len() as u32);
            reassembled.extend_from_slice(payload);
        }
        assert_eq!(reassembled, FrameFactory::payload(2, 3, msg));
    }

    #[test]
    fn slab_builder_matches_heap_factory_byte_for_byte() {
        use falcon_packet::{SlabConfig, SlabPool};
        let f = FrameFactory::new(9);
        let mut pool = SlabPool::new(SlabConfig::default());
        let mut b = SlabFrameBuilder::new(f);

        for seq in 0..4u64 {
            let slab = b.udp_wire(&mut pool, 5, seq, 700);
            let heap = f.udp_wire(5, seq, 700);
            assert_eq!(slab.segs.len(), heap.len());
            assert_eq!(slab.segs[0], heap[0]);
            assert!(slab.segs[0].is_pooled());
            assert!(falcon_packet::slab::recycle(slab));
        }

        let slab = b.tcp_wire(&mut pool, 2, 3, 4096, 1448);
        let heap = f.tcp_wire(2, 3, 4096, 1448);
        assert_eq!(slab.segs.len(), heap.len());
        for (s, h) in slab.segs.iter().zip(&heap) {
            assert_eq!(s, h);
        }
        assert!(falcon_packet::slab::recycle(slab));

        // Slots recirculate: nothing leaked after the recycles drain.
        let c = pool.counters().snapshot();
        assert!(c.fallbacks == 0, "default pool must not fall back");
    }

    #[test]
    fn expected_digest_matches_inner_frame_payload() {
        let f = FrameFactory::default();
        let inner = f.inner_frame(true, 4, 11, 2000);
        // TCP inner: payload starts after eth(14)+ipv4(20)+tcp(20).
        assert_eq!(
            crate::payload_digest(&inner[54..]),
            FrameFactory::expected_digest(4, 11, 2000)
        );
    }
}

//! Flamegraph-style profiles from the CPU ledger.
//!
//! The paper uses `perf` + flamegraph to show which kernel functions
//! dominate the overlay path (Figure 6: `gro_cell_poll`,
//! `process_backlog`, `mlx5e_napi_poll` shares under sockperf vs
//! memcached). [`Profile`] computes per-function shares from a
//! [`CpuLedger`] and exports the standard
//! *folded-stack* text format that `flamegraph.pl` and speedscope read.

use serde::{Deserialize, Serialize};

use crate::cpu::CpuLedger;

/// A per-function CPU profile (the simulation's flamegraph).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Profile {
    entries: Vec<ProfileEntry>,
    total_ns: u64,
}

/// One function's share of total CPU time.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// Kernel function name.
    pub func: String,
    /// Nanoseconds attributed to the function.
    pub ns: u64,
    /// Share of total busy time, 0–1.
    pub share: f64,
}

impl Profile {
    /// Builds a profile from a ledger.
    pub fn from_ledger(ledger: &CpuLedger) -> Self {
        let by_time = ledger.functions_by_time();
        let total_ns: u64 = by_time.iter().map(|&(_, ns)| ns).sum();
        let entries = by_time
            .into_iter()
            .map(|(func, ns)| ProfileEntry {
                func: func.to_string(),
                ns,
                share: if total_ns == 0 {
                    0.0
                } else {
                    ns as f64 / total_ns as f64
                },
            })
            .collect();
        Profile { entries, total_ns }
    }

    /// Builds a context-split profile: each entry is a
    /// `context;function` frame pair, so [`Profile::to_folded`]
    /// produces three-frame stacks (`root;context;func`) that group a
    /// flamegraph by execution context the way `perf` call stacks pass
    /// through `__do_softirq` / `ret_from_intr`.
    pub fn from_ledger_by_context(ledger: &CpuLedger) -> Self {
        let by_ctx = ledger.functions_by_context();
        let total_ns: u64 = by_ctx.iter().map(|&(_, _, ns)| ns).sum();
        let entries = by_ctx
            .into_iter()
            .map(|(ctx, func, ns)| ProfileEntry {
                func: format!("{};{}", ctx.label(), func),
                ns,
                share: if total_ns == 0 {
                    0.0
                } else {
                    ns as f64 / total_ns as f64
                },
            })
            .collect();
        Profile { entries, total_ns }
    }

    /// Total busy nanoseconds in the profile.
    pub fn total_ns(&self) -> u64 {
        self.total_ns
    }

    /// Returns the share (0–1) of one function, 0 if absent.
    pub fn share_of(&self, func: &str) -> f64 {
        self.entries
            .iter()
            .find(|e| e.func == func)
            .map_or(0.0, |e| e.share)
    }

    /// The entries, sorted by descending time.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// Exports folded-stack lines (`root;func count`), one per function,
    /// with counts in microseconds. Feed to `flamegraph.pl`.
    pub fn to_folded(&self, root: &str) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(root);
            out.push(';');
            out.push_str(&e.func);
            out.push(' ');
            out.push_str(&(e.ns / 1_000).max(1).to_string());
            out.push('\n');
        }
        out
    }

    /// Renders a compact text table of the top `n` functions.
    pub fn to_table(&self, n: usize) -> String {
        let mut out = String::from("function                          time        share\n");
        for e in self.entries.iter().take(n) {
            out.push_str(&format!(
                "{:<32}  {:>9.3}ms  {:>6.2}%\n",
                e.func,
                e.ns as f64 / 1e6,
                e.share * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::Context;
    use falcon_simcore::SimDuration;

    fn ledger() -> CpuLedger {
        let mut l = CpuLedger::new(2);
        l.charge(
            0,
            Context::SoftIrq,
            "mlx5e_napi_poll",
            SimDuration::from_micros(300),
        );
        l.charge(
            1,
            Context::SoftIrq,
            "gro_cell_poll",
            SimDuration::from_micros(500),
        );
        l.charge(
            1,
            Context::SoftIrq,
            "process_backlog",
            SimDuration::from_micros(200),
        );
        l
    }

    #[test]
    fn shares_sum_to_one() {
        let p = Profile::from_ledger(&ledger());
        let sum: f64 = p.entries().iter().map(|e| e.share).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(p.total_ns(), 1_000_000);
    }

    #[test]
    fn ordering_and_lookup() {
        let p = Profile::from_ledger(&ledger());
        assert_eq!(p.entries()[0].func, "gro_cell_poll");
        assert!((p.share_of("gro_cell_poll") - 0.5).abs() < 1e-9);
        assert!((p.share_of("mlx5e_napi_poll") - 0.3).abs() < 1e-9);
        assert_eq!(p.share_of("not_a_function"), 0.0);
    }

    #[test]
    fn folded_format() {
        let p = Profile::from_ledger(&ledger());
        let folded = p.to_folded("sockperf");
        assert!(folded.contains("sockperf;gro_cell_poll 500"));
        assert!(folded.contains("sockperf;process_backlog 200"));
        assert_eq!(folded.lines().count(), 3);
    }

    #[test]
    fn folded_by_context_has_three_frames() {
        let mut l = ledger();
        // The same function charged from two contexts must split.
        l.charge(
            1,
            Context::Task,
            "gro_cell_poll",
            SimDuration::from_micros(100),
        );
        let p = Profile::from_ledger_by_context(&l);
        let folded = p.to_folded("sockperf");
        assert!(folded.contains("sockperf;softirq;gro_cell_poll 500"));
        assert!(folded.contains("sockperf;task;gro_cell_poll 100"));
        assert!(folded.contains("sockperf;softirq;process_backlog 200"));
        assert_eq!(folded.lines().count(), 4);
        // The flat profile keeps aggregating across contexts.
        let flat = Profile::from_ledger(&l);
        assert!(flat
            .to_folded("sockperf")
            .contains("sockperf;gro_cell_poll 600"));
    }

    #[test]
    fn empty_ledger_profile() {
        let p = Profile::from_ledger(&CpuLedger::new(2));
        assert_eq!(p.total_ns(), 0);
        assert!(p.entries().is_empty());
        assert_eq!(p.to_folded("x"), "");
    }

    #[test]
    fn table_renders_top_n() {
        let p = Profile::from_ledger(&ledger());
        let table = p.to_table(2);
        assert!(table.contains("gro_cell_poll"));
        assert!(table.contains("mlx5e_napi_poll"));
        assert!(!table.contains("process_backlog"));
    }
}

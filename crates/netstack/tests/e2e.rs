//! End-to-end data-path tests: client → wire → NIC → softirq pipeline →
//! socket → application, in host and overlay modes.

use falcon_metrics::IrqKind;
use falcon_netstack::sim::{App, MsgMeta, SimApi, SimRunner};
use falcon_netstack::{KernelVersion, NetMode, Pacing, SimConfig, SockId, StackConfig, StayLocal};
use falcon_simcore::SimDuration;

/// Opens one UDP flow into a host- or container-bound socket and
/// stresses or paces it.
struct UdpApp {
    payload: usize,
    pacing: Pacing,
    senders: usize,
    container: bool,
}

impl App for UdpApp {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let container = if self.container {
            let c = api.add_container(0, 10);
            Some(c)
        } else {
            None
        };
        api.bind_udp(container, 5001, 5, 300);
        let flow = api.udp_flow(container, 5001, self.payload);
        api.udp_stress(flow, self.senders, self.pacing);
    }
}

fn run_udp(mode: NetMode, payload: usize, pacing: Pacing, millis: u64) -> SimRunner {
    let server = StackConfig::new(mode, KernelVersion::K419, 8);
    let cfg = SimConfig::new(server);
    let app = UdpApp {
        payload,
        pacing,
        senders: 2,
        container: mode == NetMode::Overlay,
    };
    let mut runner = SimRunner::new(cfg, Box::new(StayLocal), Box::new(app));
    runner.run_for(SimDuration::from_millis(millis));
    runner
}

#[test]
fn host_udp_delivers_packets() {
    let runner = run_udp(NetMode::Host, 16, Pacing::FixedPps(50_000.0), 20);
    let c = runner.counters();
    assert!(c.total_sent() > 500, "sent {}", c.total_sent());
    assert!(
        c.total_delivered() > 500,
        "delivered {}",
        c.total_delivered()
    );
    // Underloaded: nearly everything arrives.
    assert!(c.delivery_ratio() > 0.95, "ratio {}", c.delivery_ratio());
    // Latency is in the microseconds, not milliseconds.
    let p50 = c.latency.percentile(50.0);
    assert!(p50 > 1_000 && p50 < 100_000, "p50 {p50} ns");
    assert_eq!(runner.machine().order.violations(), 0);
    assert_eq!(c.lookup_failures, 0);
}

#[test]
fn overlay_udp_delivers_and_costs_more() {
    let host = run_udp(NetMode::Host, 16, Pacing::FixedPps(50_000.0), 20);
    let con = run_udp(NetMode::Overlay, 16, Pacing::FixedPps(50_000.0), 20);
    assert!(con.counters().total_delivered() > 500);
    assert_eq!(con.machine().order.violations(), 0);
    // The overlay executes more softirqs for the same traffic.
    let host_netrx = host.machine().cores.irqs.total(IrqKind::NetRx);
    let con_netrx = con.machine().cores.irqs.total(IrqKind::NetRx);
    assert!(
        con_netrx as f64 > host_netrx as f64 * 1.5,
        "overlay NET_RX {con_netrx} vs host {host_netrx}"
    );
    // And one-way latency is higher.
    let hp50 = host.counters().latency.percentile(50.0);
    let cp50 = con.counters().latency.percentile(50.0);
    assert!(cp50 > hp50, "overlay p50 {cp50} <= host p50 {hp50}");
}

#[test]
fn overlay_stress_is_softirq_bottlenecked() {
    let con = run_udp(NetMode::Overlay, 16, Pacing::MaxRate, 20);
    let c = con.counters();
    assert!(c.total_sent() > 2_000);
    // Max-rate stress overloads the pipeline: some packets drop.
    assert!(c.total_drops() > 0, "expected queue drops under stress");
    assert_eq!(con.machine().order.violations(), 0);
    // Softirq serialization (paper Figure 5): the vanilla overlay
    // cannot use more than a couple of cores for one flow's softirqs —
    // everything past packet steering stacks on the single RPS core.
    let ledger = &con.machine().cores.ledger;
    let softirq: Vec<u64> = (0..8).map(|core| ledger.core(core).softirq_ns).collect();
    let top = *softirq.iter().max().unwrap();
    let busy_cores = softirq.iter().filter(|&&ns| ns > top / 10).count();
    assert!(
        busy_cores <= 3,
        "softirq spread over {busy_cores} cores: {softirq:?}"
    );
}

#[test]
fn fragmented_udp_reassembles() {
    let runner = run_udp(NetMode::Overlay, 4096, Pacing::FixedPps(5_000.0), 20);
    let c = runner.counters();
    // ~100 datagrams, each 3 fragments at 1422-byte max payload.
    assert!(
        c.total_delivered() > 50,
        "delivered {}",
        c.total_delivered()
    );
    assert!(
        c.frames_sent as f64 > c.total_sent() as f64 * 2.5,
        "fragmentation happened"
    );
    assert_eq!(runner.machine().order.violations(), 0);
    // Delivered messages carry the full payload size.
    let bytes = c.total_delivered_bytes();
    assert_eq!(bytes, c.total_delivered() * 4096);
}

/// TCP stream app.
struct TcpApp {
    msg_size: usize,
    container: bool,
}

impl App for TcpApp {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let container = if self.container {
            Some(api.add_container(0, 10))
        } else {
            None
        };
        api.bind_tcp(container, 5201, 5, 300);
        let flow = api.tcp_flow(container, 5201, 64);
        api.tcp_stream(flow, self.msg_size);
    }
}

#[test]
fn host_tcp_stream_self_clocks() {
    let server = StackConfig::new(NetMode::Host, KernelVersion::K419, 8);
    let cfg = SimConfig::new(server);
    let mut runner = SimRunner::new(
        cfg,
        Box::new(StayLocal),
        Box::new(TcpApp {
            msg_size: 4096,
            container: false,
        }),
    );
    runner.run_for(SimDuration::from_millis(20));
    let c = runner.counters();
    assert!(
        c.total_delivered() > 1_000,
        "delivered {}",
        c.total_delivered()
    );
    assert!(c.acks_sent > 100, "acks {}", c.acks_sent);
    assert_eq!(runner.machine().order.violations(), 0);
    // Closed loop: inflight bounded by window, so drops should be rare.
    assert!(c.delivery_ratio() > 0.9, "ratio {}", c.delivery_ratio());
}

#[test]
fn overlay_tcp_stream_works_with_gro() {
    let server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
    let cfg = SimConfig::new(server);
    let mut runner = SimRunner::new(
        cfg,
        Box::new(StayLocal),
        Box::new(TcpApp {
            msg_size: 4096,
            container: true,
        }),
    );
    runner.run_for(SimDuration::from_millis(20));
    let c = runner.counters();
    assert!(
        c.total_delivered() > 500,
        "delivered {}",
        c.total_delivered()
    );
    assert_eq!(runner.machine().order.violations(), 0);
    // GRO engaged: napi_gro_receive shows up in the profile.
    let gro_ns = runner
        .machine()
        .cores
        .ledger
        .function_total("napi_gro_receive");
    assert!(gro_ns > 0);
}

/// Ping-pong (request/response) app measuring RTT.
struct PingPongApp {
    sock: Option<SockId>,
    outstanding: u64,
    done: u64,
    target: u64,
}

impl App for PingPongApp {
    fn on_start(&mut self, api: &mut SimApi<'_>) {
        let c = api.add_container(0, 10);
        self.sock = Some(api.bind_udp(Some(c), 5001, 5, 300));
        let flow = api.udp_flow(Some(c), 5001, 64);
        self.outstanding = api.udp_send(flow, 64);
    }

    fn on_server_msg(&mut self, api: &mut SimApi<'_>, sock: SockId, meta: &MsgMeta) {
        // Echo server: respond with the same size.
        api.respond(sock, meta, meta.bytes);
    }

    fn on_client_msg(
        &mut self,
        api: &mut SimApi<'_>,
        flow: falcon_netstack::FlowId,
        meta: &MsgMeta,
    ) {
        assert_eq!(meta.msg_id, self.outstanding, "responses correlate");
        self.done += 1;
        if self.done < self.target {
            self.outstanding = api.udp_send(flow, 64);
        }
    }
}

#[test]
fn overlay_ping_pong_round_trips() {
    let server = StackConfig::new(NetMode::Overlay, KernelVersion::K419, 8);
    let cfg = SimConfig::new(server);
    let mut runner = SimRunner::new(
        cfg,
        Box::new(StayLocal),
        Box::new(PingPongApp {
            sock: None,
            outstanding: 0,
            done: 0,
            target: 200,
        }),
    );
    runner.run_for(SimDuration::from_millis(100));
    let c = runner.counters();
    assert_eq!(c.rtt.count(), 200, "all pings got pongs");
    let p50 = c.rtt.percentile(50.0);
    assert!(p50 > 5_000 && p50 < 200_000, "RTT p50 {p50} ns");
    assert_eq!(runner.machine().order.violations(), 0);
}

#[test]
fn determinism_same_seed_same_result() {
    let a = run_udp(NetMode::Overlay, 16, Pacing::PoissonPps(100_000.0), 10);
    let b = run_udp(NetMode::Overlay, 16, Pacing::PoissonPps(100_000.0), 10);
    assert_eq!(a.counters().total_sent(), b.counters().total_sent());
    assert_eq!(
        a.counters().total_delivered(),
        b.counters().total_delivered()
    );
    assert_eq!(
        a.machine().cores.ledger.total_busy(),
        b.machine().cores.ledger.total_busy()
    );
}

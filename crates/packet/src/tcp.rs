//! TCP header codec (20-byte header, no options).

use serde::{Deserialize, Serialize};

use crate::CodecError;

/// Length of a TCP header without options.
pub const TCP_HDR_LEN: usize = 20;

/// TCP control flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TcpFlags {
    /// SYN: connection setup.
    pub syn: bool,
    /// ACK: acknowledgement number valid.
    pub ack: bool,
    /// FIN: sender is done.
    pub fin: bool,
    /// PSH: push buffered data to the application.
    pub psh: bool,
    /// RST: reset the connection.
    pub rst: bool,
}

impl TcpFlags {
    /// Returns the wire bit pattern (low byte of the flags field).
    pub fn to_bits(self) -> u8 {
        (self.fin as u8)
            | (self.syn as u8) << 1
            | (self.rst as u8) << 2
            | (self.psh as u8) << 3
            | (self.ack as u8) << 4
    }

    /// Parses the wire bit pattern.
    pub fn from_bits(bits: u8) -> Self {
        TcpFlags {
            fin: bits & 0x01 != 0,
            syn: bits & 0x02 != 0,
            rst: bits & 0x04 != 0,
            psh: bits & 0x08 != 0,
            ack: bits & 0x10 != 0,
        }
    }

    /// A plain data segment (ACK set, as on an established connection).
    pub fn data() -> Self {
        TcpFlags {
            ack: true,
            ..Default::default()
        }
    }
}

/// A TCP header (data offset fixed at 5, i.e. no options).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TcpHdr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number of the first payload byte.
    pub seq: u32,
    /// Acknowledgement number (next byte expected).
    pub ack: u32,
    /// Control flags.
    pub flags: TcpFlags,
    /// Advertised receive window.
    pub window: u16,
}

impl TcpHdr {
    /// Serializes the header into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`TCP_HDR_LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0..2].copy_from_slice(&self.src_port.to_be_bytes());
        buf[2..4].copy_from_slice(&self.dst_port.to_be_bytes());
        buf[4..8].copy_from_slice(&self.seq.to_be_bytes());
        buf[8..12].copy_from_slice(&self.ack.to_be_bytes());
        buf[12] = 5 << 4; // Data offset 5 words.
        buf[13] = self.flags.to_bits();
        buf[14..16].copy_from_slice(&self.window.to_be_bytes());
        buf[16] = 0; // Checksum: modelled as CPU cost, not bytes.
        buf[17] = 0;
        buf[18] = 0; // Urgent pointer.
        buf[19] = 0;
    }

    /// Appends the header to a byte vector.
    pub fn push_onto(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + TCP_HDR_LEN, 0);
        self.write(&mut out[start..]);
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<TcpHdr, CodecError> {
        if buf.len() < TCP_HDR_LEN {
            return Err(CodecError::Truncated {
                what: "tcp",
                need: TCP_HDR_LEN,
                have: buf.len(),
            });
        }
        let data_offset = (buf[12] >> 4) as usize * 4;
        if data_offset != TCP_HDR_LEN {
            return Err(CodecError::Malformed {
                what: "tcp",
                why: "options not supported",
            });
        }
        Ok(TcpHdr {
            src_port: u16::from_be_bytes([buf[0], buf[1]]),
            dst_port: u16::from_be_bytes([buf[2], buf[3]]),
            seq: u32::from_be_bytes([buf[4], buf[5], buf[6], buf[7]]),
            ack: u32::from_be_bytes([buf[8], buf[9], buf[10], buf[11]]),
            flags: TcpFlags::from_bits(buf[13]),
            window: u16::from_be_bytes([buf[14], buf[15]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = TcpHdr {
            src_port: 43210,
            dst_port: 80,
            seq: 0xDEAD_BEEF,
            ack: 0x0102_0304,
            flags: TcpFlags {
                syn: true,
                ack: true,
                ..Default::default()
            },
            window: 65535,
        };
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        assert_eq!(buf.len(), TCP_HDR_LEN);
        assert_eq!(TcpHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    fn flags_round_trip_all_combinations() {
        for bits in 0u8..32 {
            let f = TcpFlags::from_bits(bits);
            assert_eq!(f.to_bits(), bits & 0x1F);
        }
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            TcpHdr::parse(&[0u8; 19]),
            Err(CodecError::Truncated { what: "tcp", .. })
        ));
    }

    #[test]
    fn rejects_options() {
        let mut buf = vec![0u8; TCP_HDR_LEN];
        TcpHdr {
            src_port: 1,
            dst_port: 2,
            seq: 0,
            ack: 0,
            flags: TcpFlags::data(),
            window: 100,
        }
        .write(&mut buf);
        buf[12] = 8 << 4;
        assert!(matches!(
            TcpHdr::parse(&buf),
            Err(CodecError::Malformed { what: "tcp", .. })
        ));
    }

    #[test]
    fn data_flags() {
        let f = TcpFlags::data();
        assert!(f.ack && !f.syn && !f.fin && !f.rst && !f.psh);
    }
}

//! Thin raw-syscall layer for batched UDP I/O.
//!
//! The workspace vendors no `libc`, so — exactly like the dataplane's
//! affinity module — the handful of syscalls the ingest path needs are
//! declared by hand against glibc and gated to Linux: `recvmmsg` /
//! `sendmmsg` for batched datagram I/O, and `setsockopt(SO_RXQ_OVFL)`
//! plus its control-message parse for the kernel's receive-queue
//! overflow counter (the socket-drop estimate the paper-style loss
//! accounting needs). Every struct layout below matches the glibc
//! 64-bit ABI; on other targets the module degrades to stubs that
//! report `Unsupported` and the portable `recv_from` loop takes over.

use std::io;
use std::net::UdpSocket;

#[cfg(target_os = "linux")]
pub use sys::*;

#[cfg(target_os = "linux")]
mod sys {
    use super::*;
    use std::os::unix::io::AsRawFd;

    /// `struct iovec` (glibc, 64-bit).
    #[repr(C)]
    struct IoVec {
        base: *mut u8,
        len: usize,
    }

    /// `struct msghdr` (glibc, 64-bit). `repr(C)` inserts the same
    /// 4-byte pad after `namelen` the C compiler does.
    #[repr(C)]
    struct MsgHdr {
        name: *mut u8,
        namelen: u32,
        iov: *mut IoVec,
        iovlen: usize,
        control: *mut u8,
        controllen: usize,
        flags: i32,
    }

    /// `struct mmsghdr` (glibc, 64-bit).
    #[repr(C)]
    struct MMsgHdr {
        hdr: MsgHdr,
        len: u32,
    }

    const SOL_SOCKET: i32 = 1;
    const SO_RXQ_OVFL: i32 = 40;
    const SO_RCVBUF: i32 = 8;
    const MSG_DONTWAIT: i32 = 0x40;
    /// `struct cmsghdr` is 16 bytes (size_t len, int level, int type);
    /// the u32 overflow count follows immediately.
    const CMSG_HDR: usize = 16;
    /// Control buffer per message: one cmsghdr + u32, padded.
    pub const CONTROL_LEN: usize = 24;

    extern "C" {
        fn recvmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32, timeout: *mut u8) -> i32;
        fn sendmmsg(fd: i32, msgvec: *mut MMsgHdr, vlen: u32, flags: i32) -> i32;
        fn setsockopt(fd: i32, level: i32, optname: i32, optval: *const u8, optlen: u32) -> i32;
    }

    /// Asks the kernel to attach its cumulative receive-queue overflow
    /// count to every datagram (`SO_RXQ_OVFL`). Returns whether the
    /// option took; callers treat a refusal as "estimate unavailable".
    pub fn enable_rxq_ovfl(sock: &UdpSocket) -> bool {
        let one: u32 = 1;
        let rc = unsafe {
            setsockopt(
                sock.as_raw_fd(),
                SOL_SOCKET,
                SO_RXQ_OVFL,
                (&one as *const u32).cast(),
                4,
            )
        };
        rc == 0
    }

    /// Requests a larger kernel receive buffer (best-effort; the kernel
    /// clamps to `rmem_max`).
    pub fn set_rcvbuf(sock: &UdpSocket, bytes: u32) -> bool {
        let rc = unsafe {
            setsockopt(
                sock.as_raw_fd(),
                SOL_SOCKET,
                SO_RCVBUF,
                (&bytes as *const u32).cast(),
                4,
            )
        };
        rc == 0
    }

    /// Batched receive: reads up to `bufs.len()` datagrams in one
    /// syscall. `bufs[i]` must be full-length scratch; on return
    /// `lens[i]` holds each datagram's size. When the kernel attached
    /// an `SO_RXQ_OVFL` counter, the latest cumulative value lands in
    /// `*ovfl`. Returns the number of datagrams read; empty queues
    /// surface as `WouldBlock`.
    pub fn recv_batch(
        sock: &UdpSocket,
        bufs: &mut [Vec<u8>],
        lens: &mut [usize],
        ovfl: &mut Option<u64>,
    ) -> io::Result<usize> {
        let vlen = bufs.len().min(lens.len());
        if vlen == 0 {
            return Ok(0);
        }
        let mut controls = vec![0u8; vlen * CONTROL_LEN];
        let mut iovecs: Vec<IoVec> = bufs
            .iter_mut()
            .take(vlen)
            .map(|b| IoVec {
                base: b.as_mut_ptr(),
                len: b.len(),
            })
            .collect();
        let mut msgs: Vec<MMsgHdr> = (0..vlen)
            .map(|i| MMsgHdr {
                hdr: MsgHdr {
                    name: std::ptr::null_mut(),
                    namelen: 0,
                    iov: &mut iovecs[i],
                    iovlen: 1,
                    control: controls[i * CONTROL_LEN..].as_mut_ptr(),
                    controllen: CONTROL_LEN,
                    flags: 0,
                },
                len: 0,
            })
            .collect();
        let n = unsafe {
            recvmmsg(
                sock.as_raw_fd(),
                msgs.as_mut_ptr(),
                vlen as u32,
                MSG_DONTWAIT,
                std::ptr::null_mut(),
            )
        };
        if n < 0 {
            return Err(io::Error::last_os_error());
        }
        let n = n as usize;
        for (i, msg) in msgs.iter().take(n).enumerate() {
            lens[i] = msg.len as usize;
            if let Some(count) = parse_rxq_ovfl(
                &controls[i * CONTROL_LEN..(i + 1) * CONTROL_LEN],
                msg.hdr.controllen,
            ) {
                *ovfl = Some(count);
            }
        }
        Ok(n)
    }

    /// Extracts the `SO_RXQ_OVFL` cumulative drop count from one
    /// message's control buffer, if the kernel attached one.
    fn parse_rxq_ovfl(control: &[u8], controllen: usize) -> Option<u64> {
        if controllen < CMSG_HDR + 4 || control.len() < CMSG_HDR + 4 {
            return None;
        }
        let level = i32::from_ne_bytes(control[8..12].try_into().ok()?);
        let typ = i32::from_ne_bytes(control[12..16].try_into().ok()?);
        if level != SOL_SOCKET || typ != SO_RXQ_OVFL {
            return None;
        }
        let count = u32::from_ne_bytes(control[CMSG_HDR..CMSG_HDR + 4].try_into().ok()?);
        Some(count as u64)
    }

    /// Batched send over a connected socket: one `sendmmsg` call per
    /// invocation, retried from the first unsent frame until all of
    /// `frames` are out. Returns the number of frames sent (always
    /// `frames.len()` unless the socket errors).
    pub fn send_batch(sock: &UdpSocket, frames: &[Vec<u8>]) -> io::Result<usize> {
        let mut done = 0;
        while done < frames.len() {
            let rest = &frames[done..];
            let mut iovecs: Vec<IoVec> = rest
                .iter()
                .map(|f| IoVec {
                    base: f.as_ptr() as *mut u8,
                    len: f.len(),
                })
                .collect();
            let mut msgs: Vec<MMsgHdr> = (0..rest.len())
                .map(|i| MMsgHdr {
                    hdr: MsgHdr {
                        name: std::ptr::null_mut(),
                        namelen: 0,
                        iov: &mut iovecs[i],
                        iovlen: 1,
                        control: std::ptr::null_mut(),
                        controllen: 0,
                        flags: 0,
                    },
                    len: 0,
                })
                .collect();
            let n = unsafe { sendmmsg(sock.as_raw_fd(), msgs.as_mut_ptr(), rest.len() as u32, 0) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    continue;
                }
                return Err(e);
            }
            done += n as usize;
        }
        Ok(done)
    }

    /// Whether the batched-syscall backend is compiled in.
    pub fn batched_io_available() -> bool {
        true
    }
}

#[cfg(not(target_os = "linux"))]
pub use fallback::*;

#[cfg(not(target_os = "linux"))]
mod fallback {
    use super::*;

    pub fn enable_rxq_ovfl(_sock: &UdpSocket) -> bool {
        false
    }

    pub fn set_rcvbuf(_sock: &UdpSocket, _bytes: u32) -> bool {
        false
    }

    pub fn recv_batch(
        _sock: &UdpSocket,
        _bufs: &mut [Vec<u8>],
        _lens: &mut [usize],
        _ovfl: &mut Option<u64>,
    ) -> io::Result<usize> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "recvmmsg unavailable on this target",
        ))
    }

    pub fn send_batch(sock: &UdpSocket, frames: &[Vec<u8>]) -> io::Result<usize> {
        for f in frames {
            sock.send(f)?;
        }
        Ok(frames.len())
    }

    pub fn batched_io_available() -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn loopback_pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").expect("bind rx");
        let tx = UdpSocket::bind("127.0.0.1:0").expect("bind tx");
        tx.connect(rx.local_addr().unwrap()).expect("connect");
        (rx, tx)
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn recvmmsg_reads_what_sendmmsg_wrote() {
        let (rx, tx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        let frames: Vec<Vec<u8>> = (0..5u8).map(|i| vec![i; 100 + i as usize]).collect();
        assert_eq!(send_batch(&tx, &frames).unwrap(), 5);
        let mut bufs = vec![vec![0u8; 2048]; 8];
        let mut lens = vec![0usize; 8];
        let mut ovfl = None;
        let mut got = 0;
        // Loopback delivery is asynchronous; spin briefly.
        for _ in 0..1000 {
            match recv_batch(&rx, &mut bufs, &mut lens, &mut ovfl) {
                Ok(n) => {
                    for i in 0..n {
                        let expect = &frames[got + i];
                        assert_eq!(&bufs[i][..lens[i]], &expect[..]);
                    }
                    got += n;
                    if got == 5 {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                Err(e) => panic!("recv_batch: {e}"),
            }
        }
        assert_eq!(got, 5, "all datagrams arrive in order on loopback");
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn empty_queue_is_would_block() {
        let (rx, _tx) = loopback_pair();
        rx.set_nonblocking(true).unwrap();
        let mut bufs = vec![vec![0u8; 2048]; 2];
        let mut lens = vec![0usize; 2];
        let mut ovfl = None;
        let err = recv_batch(&rx, &mut bufs, &mut lens, &mut ovfl).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn rxq_ovfl_option_is_best_effort() {
        let (rx, _tx) = loopback_pair();
        // Must not panic either way; on Linux it should take.
        let took = enable_rxq_ovfl(&rx);
        if cfg!(target_os = "linux") {
            assert!(took, "SO_RXQ_OVFL supported since 2.6.33");
        }
    }

    #[test]
    fn send_batch_portable_path_delivers() {
        let (rx, tx) = loopback_pair();
        rx.set_nonblocking(false).unwrap();
        rx.set_read_timeout(Some(std::time::Duration::from_secs(5)))
            .unwrap();
        let frames = vec![vec![7u8; 64], vec![9u8; 65]];
        assert_eq!(send_batch(&tx, &frames).unwrap(), 2);
        let mut buf = [0u8; 2048];
        let n = rx.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], &frames[0][..]);
        let n = rx.recv(&mut buf).unwrap();
        assert_eq!(&buf[..n], &frames[1][..]);
    }
}

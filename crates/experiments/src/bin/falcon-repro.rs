//! `falcon-repro`: regenerate the paper's figures from the simulation.
//!
//! ```text
//! falcon-repro --list             # available figure ids
//! falcon-repro all                # run everything at full scale
//! falcon-repro --quick fig10      # quick (test-scale) run of one figure
//! falcon-repro --json fig18       # machine-readable output
//! ```

use std::process::ExitCode;

use falcon_experiments::figs;
use falcon_experiments::measure::Scale;

fn usage() {
    eprintln!(
        "usage: falcon-repro [--quick] [--json] [--list] <fig-id>... | all\n\
         figure ids: {}",
        figs::all()
            .iter()
            .map(|&(id, _)| id)
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut json = false;
    let mut wanted: Vec<String> = Vec::new();

    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--json" => json = true,
            "--list" | "-l" => {
                for (id, _) in figs::all() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
            id => wanted.push(id.to_string()),
        }
    }

    if wanted.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }

    let registry = figs::all();
    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<_> = registry
        .iter()
        .filter(|(id, _)| run_all || wanted.iter().any(|w| w == id))
        .collect();

    if !run_all {
        for w in &wanted {
            if !registry.iter().any(|(id, _)| id == w) {
                eprintln!("unknown figure id: {w}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    for (id, runner) in selected {
        eprintln!("running {id} ({:?} scale)...", scale);
        let result = runner(scale);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("serializable")
            );
        } else {
            println!("{result}");
        }
    }
    ExitCode::SUCCESS
}

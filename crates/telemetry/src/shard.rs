//! Per-worker telemetry shards behind seqlock-style snapshots.
//!
//! Each dataplane worker owns exactly one [`ShardWriter`]; the sampler
//! thread holds the matching [`Shard`] handles and takes consistent
//! snapshots without ever blocking the writer. The protocol is the
//! classic sequence lock (the same one the kernel uses for jiffies and
//! cpustat): the writer bumps a sequence number to odd, mutates in
//! place, then bumps it to even; a reader copies the data and retries
//! if the sequence changed (or was odd) around its copy.
//!
//! The writer never allocates and never blocks: a publish is two
//! atomic stores, a fence, and a handful of plain stores into the
//! shard. All the expensive work (cloning histogram buckets) happens
//! on the reader side, once per sampling interval.
//!
//! **Shape invariant**: a write session must never resize any `Vec`
//! inside [`WorkerSample`] — readers rely on the heap layout being
//! stable while they copy. [`ShardWriter::write`] debug-asserts this.

use std::cell::UnsafeCell;
use std::sync::atomic::{fence, AtomicU64, Ordering};
use std::sync::Arc;

use falcon_metrics::Histogram;
use serde::Serialize;

/// Where a worker's wall-clock went, in nanoseconds. The five buckets
/// are chained timestamp segments: every nanosecond of the worker loop
/// lands in exactly one of them, so they sum to `wall_ns` by
/// construction (the conformance suite asserts ≥ 95 % closure).
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct StallBreakdown {
    /// Executing stage work (spin budget, wire verification, and the
    /// per-packet bookkeeping that rides between stage boundaries).
    pub busy_ns: u64,
    /// Publishing batches downstream (`flush_outbound`), including the
    /// time spent staging into full rings and accounting tail drops.
    pub stall_push_ns: u64,
    /// Sweeping upstream rings for input (`pop_batch` and the
    /// per-sweep accounting that follows a drain).
    pub stall_pop_ns: u64,
    /// Steering: policy choice, flow-table routing, and the
    /// hand-over-hand in-flight guard exchange.
    pub guard_wait_ns: u64,
    /// Idle backoff (spin → yield → park) when no ring had work.
    pub idle_ns: u64,
    /// Total wall-clock of the worker loop, barrier to exit.
    pub wall_ns: u64,
}

impl StallBreakdown {
    /// Nanoseconds attributed to one of the five named buckets.
    pub fn attributed_ns(&self) -> u64 {
        self.busy_ns + self.stall_push_ns + self.stall_pop_ns + self.guard_wait_ns + self.idle_ns
    }

    /// Fraction of wall-clock the buckets explain (1.0 for an idle
    /// shard that has not measured anything yet).
    pub fn coverage(&self) -> f64 {
        if self.wall_ns == 0 {
            1.0
        } else {
            self.attributed_ns() as f64 / self.wall_ns as f64
        }
    }

    /// Bucket-wise difference vs an earlier snapshot (saturating).
    pub fn delta_since(&self, earlier: &StallBreakdown) -> StallBreakdown {
        StallBreakdown {
            busy_ns: self.busy_ns.saturating_sub(earlier.busy_ns),
            stall_push_ns: self.stall_push_ns.saturating_sub(earlier.stall_push_ns),
            stall_pop_ns: self.stall_pop_ns.saturating_sub(earlier.stall_pop_ns),
            guard_wait_ns: self.guard_wait_ns.saturating_sub(earlier.guard_wait_ns),
            idle_ns: self.idle_ns.saturating_sub(earlier.idle_ns),
            wall_ns: self.wall_ns.saturating_sub(earlier.wall_ns),
        }
    }
}

/// Monotonic event counters a worker publishes each sweep. Every field
/// only ever increases, so sampler deltas telescope: the sum of all
/// interval deltas equals the final cumulative value exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize)]
pub struct ShardCounters {
    /// Worker loop iterations that found work.
    pub sweeps: u64,
    /// Stage executions per pipeline stage.
    pub processed_per_stage: Vec<u64>,
    /// Packets delivered to the app endpoint by this worker.
    pub delivered: u64,
    /// Application payload bytes delivered (wire mode).
    pub bytes_delivered: u64,
    /// Drops by `DropReason::index()`.
    pub drops: Vec<u64>,
    /// Frames rejected by byte-level verification, per stage.
    pub malformed_per_stage: Vec<u64>,
    /// Wire bytes touched per stage (wire mode).
    pub bytes_per_stage: Vec<u64>,
    /// Steering decisions taken by this worker.
    pub decisions: u64,
    /// Decisions where the two-choice rehash won.
    pub second_choices: u64,
    /// (flow, stage) migrations this worker's decisions caused.
    pub migrations: u64,
    /// Flow-verdict cache consults that returned a fresh verdict.
    pub flow_cache_hits: u64,
    /// Consults that found nothing usable (stale finds count here too).
    pub flow_cache_misses: u64,
    /// Cache entries replaced to make room for a new flow.
    pub flow_cache_evictions: u64,
    /// Entries dropped because an FDB epoch bump outdated them.
    pub flow_cache_invalidations: u64,
    /// Conntrack observations absorbed by this worker's SCR shard.
    pub conntrack_updates: u64,
    /// Observations that moved a connection's replica state machine.
    pub conntrack_transitions: u64,
    /// Compact state-delta records appended for the SCR merge.
    pub scr_delta_records: u64,
}

impl ShardCounters {
    /// Zeroed counters shaped for `n_stages` pipeline stages and
    /// `n_reasons` drop reasons.
    pub fn zeroed(n_stages: usize, n_reasons: usize) -> Self {
        ShardCounters {
            processed_per_stage: vec![0; n_stages],
            drops: vec![0; n_reasons],
            malformed_per_stage: vec![0; n_stages],
            bytes_per_stage: vec![0; n_stages],
            ..ShardCounters::default()
        }
    }

    /// Total drops across all reasons.
    pub fn dropped(&self) -> u64 {
        self.drops.iter().sum()
    }

    /// Element-wise difference vs an earlier snapshot (saturating).
    pub fn delta_since(&self, earlier: &ShardCounters) -> ShardCounters {
        fn sub(a: &[u64], b: &[u64]) -> Vec<u64> {
            a.iter()
                .zip(b.iter().chain(std::iter::repeat(&0)))
                .map(|(x, y)| x.saturating_sub(*y))
                .collect()
        }
        ShardCounters {
            sweeps: self.sweeps.saturating_sub(earlier.sweeps),
            processed_per_stage: sub(&self.processed_per_stage, &earlier.processed_per_stage),
            delivered: self.delivered.saturating_sub(earlier.delivered),
            bytes_delivered: self.bytes_delivered.saturating_sub(earlier.bytes_delivered),
            drops: sub(&self.drops, &earlier.drops),
            malformed_per_stage: sub(&self.malformed_per_stage, &earlier.malformed_per_stage),
            bytes_per_stage: sub(&self.bytes_per_stage, &earlier.bytes_per_stage),
            decisions: self.decisions.saturating_sub(earlier.decisions),
            second_choices: self.second_choices.saturating_sub(earlier.second_choices),
            migrations: self.migrations.saturating_sub(earlier.migrations),
            flow_cache_hits: self.flow_cache_hits.saturating_sub(earlier.flow_cache_hits),
            flow_cache_misses: self
                .flow_cache_misses
                .saturating_sub(earlier.flow_cache_misses),
            flow_cache_evictions: self
                .flow_cache_evictions
                .saturating_sub(earlier.flow_cache_evictions),
            flow_cache_invalidations: self
                .flow_cache_invalidations
                .saturating_sub(earlier.flow_cache_invalidations),
            conntrack_updates: self
                .conntrack_updates
                .saturating_sub(earlier.conntrack_updates),
            conntrack_transitions: self
                .conntrack_transitions
                .saturating_sub(earlier.conntrack_transitions),
            scr_delta_records: self
                .scr_delta_records
                .saturating_sub(earlier.scr_delta_records),
        }
    }

    /// Adds another delta into this one (used by conservation tests to
    /// telescope interval deltas back into a cumulative total).
    pub fn accumulate(&mut self, delta: &ShardCounters) {
        fn add(a: &mut Vec<u64>, b: &[u64]) {
            if a.len() < b.len() {
                a.resize(b.len(), 0);
            }
            for (x, y) in a.iter_mut().zip(b.iter()) {
                *x += *y;
            }
        }
        self.sweeps += delta.sweeps;
        add(&mut self.processed_per_stage, &delta.processed_per_stage);
        self.delivered += delta.delivered;
        self.bytes_delivered += delta.bytes_delivered;
        add(&mut self.drops, &delta.drops);
        add(&mut self.malformed_per_stage, &delta.malformed_per_stage);
        add(&mut self.bytes_per_stage, &delta.bytes_per_stage);
        self.decisions += delta.decisions;
        self.second_choices += delta.second_choices;
        self.migrations += delta.migrations;
        self.flow_cache_hits += delta.flow_cache_hits;
        self.flow_cache_misses += delta.flow_cache_misses;
        self.flow_cache_evictions += delta.flow_cache_evictions;
        self.flow_cache_invalidations += delta.flow_cache_invalidations;
        self.conntrack_updates += delta.conntrack_updates;
        self.conntrack_transitions += delta.conntrack_transitions;
        self.scr_delta_records += delta.scr_delta_records;
    }
}

/// The data behind one worker's seqlock: everything the sampler reads.
#[derive(Debug, Clone)]
pub struct WorkerSample {
    /// Monotonic counters (deltas telescope).
    pub counters: ShardCounters,
    /// Cumulative stall attribution (deltas telescope).
    pub stall: StallBreakdown,
    /// Instantaneous depth-gauge reading for this worker's inbound
    /// load estimate at the last publish (a gauge, not a counter).
    pub ring_depth: u64,
    /// Largest per-update depth-gauge staleness observed so far; the
    /// documented bound is one NAPI budget.
    pub depth_staleness: u64,
    /// Cumulative per-stage service-time histogram shards. Interval
    /// views come from [`Histogram::delta_since`].
    pub stage_service_ns: Vec<Histogram>,
}

impl WorkerSample {
    /// Empty sample shaped for `n_stages` stages, `n_reasons` reasons.
    pub fn zeroed(n_stages: usize, n_reasons: usize) -> Self {
        WorkerSample {
            counters: ShardCounters::zeroed(n_stages, n_reasons),
            stall: StallBreakdown::default(),
            ring_depth: 0,
            depth_staleness: 0,
            stage_service_ns: (0..n_stages).map(|_| Histogram::new()).collect(),
        }
    }

    // Only consulted by the debug-build shape assertion in
    // `ShardWriter::write`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn shape(&self) -> (usize, usize, usize, usize, usize) {
        (
            self.counters.processed_per_stage.len(),
            self.counters.drops.len(),
            self.counters.malformed_per_stage.len(),
            self.counters.bytes_per_stage.len(),
            self.stage_service_ns.len(),
        )
    }
}

/// One worker's telemetry shard: seqlock-protected [`WorkerSample`].
///
/// Cache-line aligned so neighbouring workers' sequence words never
/// share a line (the writer bumps `seq` twice per publish).
#[repr(align(128))]
pub struct Shard {
    seq: AtomicU64,
    data: UnsafeCell<WorkerSample>,
}

// SAFETY: all access to `data` goes through the seqlock protocol —
// the unique `ShardWriter` mutates between odd/even transitions of
// `seq`, and readers discard any copy whose surrounding sequence
// reads disagree (or were odd). The shape invariant (no Vec resize in
// a write session) keeps racy reader copies from observing a torn
// heap layout; torn *values* are discarded by the sequence check.
unsafe impl Sync for Shard {}
unsafe impl Send for Shard {}

impl Shard {
    fn new(init: WorkerSample) -> Arc<Shard> {
        Arc::new(Shard {
            seq: AtomicU64::new(0),
            data: UnsafeCell::new(init),
        })
    }

    /// Takes a consistent snapshot, retrying while a write is in
    /// flight. Never blocks the writer.
    pub fn read(&self) -> WorkerSample {
        loop {
            let s1 = self.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                std::hint::spin_loop();
                continue;
            }
            // SAFETY: see the Sync impl. The copy may race with a
            // writer; the sequence check below discards torn copies.
            let copy = unsafe { (*self.data.get()).clone() };
            fence(Ordering::Acquire);
            let s2 = self.seq.load(Ordering::Relaxed);
            if s1 == s2 {
                return copy;
            }
        }
    }

    /// Number of completed write sessions (even seq / 2).
    pub fn publishes(&self) -> u64 {
        self.seq.load(Ordering::Acquire) / 2
    }
}

/// The single-writer handle to a [`Shard`]. Deliberately not `Clone`:
/// exactly one worker thread may publish into a shard.
pub struct ShardWriter {
    shard: Arc<Shard>,
}

impl ShardWriter {
    /// Runs one write session. The closure mutates the shard data in
    /// place; it must not resize any contained `Vec` (debug-asserted).
    #[inline]
    pub fn write<F: FnOnce(&mut WorkerSample)>(&mut self, f: F) {
        let s = self.shard.seq.load(Ordering::Relaxed);
        self.shard.seq.store(s.wrapping_add(1), Ordering::Relaxed);
        fence(Ordering::Release);
        // SAFETY: `self` is the unique writer and the sequence is now
        // odd, so readers will retry any copy taken during `f`.
        let data = unsafe { &mut *self.shard.data.get() };
        #[cfg(debug_assertions)]
        let shape = data.shape();
        f(data);
        #[cfg(debug_assertions)]
        debug_assert_eq!(shape, data.shape(), "write session resized a shard Vec");
        self.shard.seq.store(s.wrapping_add(2), Ordering::Release);
    }
}

/// Allocates a shard and its unique writer.
pub fn shard_pair(init: WorkerSample) -> (Arc<Shard>, ShardWriter) {
    let shard = Shard::new(init);
    let writer = ShardWriter {
        shard: Arc::clone(&shard),
    };
    (shard, writer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn snapshot_sees_published_write() {
        let (shard, mut w) = shard_pair(WorkerSample::zeroed(4, 5));
        w.write(|d| {
            d.counters.sweeps = 3;
            d.counters.processed_per_stage[1] = 7;
            d.stall.busy_ns = 99;
            d.stage_service_ns[0].record(250);
        });
        let snap = shard.read();
        assert_eq!(snap.counters.sweeps, 3);
        assert_eq!(snap.counters.processed_per_stage[1], 7);
        assert_eq!(snap.stall.busy_ns, 99);
        assert_eq!(snap.stage_service_ns[0].count(), 1);
        assert_eq!(shard.publishes(), 1);
    }

    #[test]
    fn concurrent_reads_are_internally_consistent() {
        // The writer keeps two counters in lockstep; a torn read would
        // observe them unequal. Hammer from a reader thread.
        let (shard, mut w) = shard_pair(WorkerSample::zeroed(2, 5));
        let stop = Arc::new(AtomicBool::new(false));
        let reader = {
            let shard = Arc::clone(&shard);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let s = shard.read();
                    assert_eq!(
                        s.counters.delivered, s.counters.sweeps,
                        "torn snapshot escaped the seqlock"
                    );
                    assert_eq!(s.counters.delivered, s.stall.busy_ns);
                    reads += 1;
                }
                reads
            })
        };
        for i in 1..=200_000u64 {
            w.write(|d| {
                d.counters.sweeps = i;
                d.counters.delivered = i;
                d.stall.busy_ns = i;
            });
        }
        stop.store(true, Ordering::Relaxed);
        let reads = reader.join().unwrap();
        assert!(reads > 0);
        let last = shard.read();
        assert_eq!(last.counters.sweeps, 200_000);
    }

    #[test]
    fn counter_deltas_telescope() {
        let mut a = ShardCounters::zeroed(3, 5);
        a.sweeps = 10;
        a.processed_per_stage[2] = 4;
        a.drops[1] = 2;
        let mut b = a.clone();
        b.sweeps = 25;
        b.processed_per_stage[2] = 9;
        b.drops[1] = 3;
        b.migrations = 1;
        let d = b.delta_since(&a);
        assert_eq!(d.sweeps, 15);
        assert_eq!(d.processed_per_stage[2], 5);
        assert_eq!(d.drops[1], 1);
        assert_eq!(d.migrations, 1);
        let mut total = ShardCounters::zeroed(3, 5);
        total.accumulate(&a.delta_since(&ShardCounters::zeroed(3, 5)));
        total.accumulate(&d);
        assert_eq!(total, b);
    }

    #[test]
    fn stall_breakdown_coverage() {
        let s = StallBreakdown {
            busy_ns: 60,
            stall_push_ns: 10,
            stall_pop_ns: 10,
            guard_wait_ns: 10,
            idle_ns: 10,
            wall_ns: 100,
        };
        assert_eq!(s.attributed_ns(), 100);
        assert!((s.coverage() - 1.0).abs() < 1e-9);
        assert_eq!(StallBreakdown::default().coverage(), 1.0);
        let earlier = StallBreakdown {
            busy_ns: 30,
            wall_ns: 50,
            ..StallBreakdown::default()
        };
        let d = s.delta_since(&earlier);
        assert_eq!(d.busy_ns, 30);
        assert_eq!(d.wall_ns, 50);
    }
}

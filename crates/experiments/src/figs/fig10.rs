//! Figure 10: single-flow UDP stress packet rates — Host vs Con vs
//! Falcon across kernels, links and packet sizes.
//!
//! Expected shape: Falcon recovers most of the overlay's loss; on 10G
//! it is near-native, on 100G it reaches a large fraction of the host
//! rate (the paper reports up to 87 %), with the residual gap at small
//! packets (user-space receive becomes the bottleneck).

use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

use crate::measure::Scale;
use crate::ratesearch::max_sustainable;
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{kpps, FigResult, Table};

fn rate(mode: Mode, kernel: KernelVersion, link: LinkSpeed, payload: usize, scale: Scale) -> f64 {
    let build = move |offered: f64| {
        let scenario = Scenario::single_flow(mode.clone(), kernel, link);
        let mut cfg = UdpStressConfig::single_flow(payload);
        cfg.senders_per_flow = 4;
        cfg.pacing = Pacing::FixedPps(offered / 4.0);
        cfg.app_cores = vec![SF_APP_CORE];
        scenario.build(Box::new(UdpStressApp::new(cfg)))
    };
    let start = if payload >= 16_384 { 4_000.0 } else { 60_000.0 };
    max_sustainable(&build, start, scale).delivered_pps
}

/// UDP stress packet rates for every (kernel, link, size) cell.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig10",
        "Single-flow UDP stress packet rates (Host / Con / Falcon)",
    );
    let (kernels, links, sizes): (&[KernelVersion], &[LinkSpeed], &[usize]) = match scale {
        Scale::Quick => (
            &[KernelVersion::K419],
            &[LinkSpeed::HundredGbit],
            &[16, 1024, 65_507],
        ),
        Scale::Full => (
            &[KernelVersion::K419, KernelVersion::K54],
            &[LinkSpeed::TenGbit, LinkSpeed::HundredGbit],
            &[16, 512, 1024, 4096, 16_384, 65_507],
        ),
    };

    let mut best_recovery: f64 = 0.0;
    for &kernel in kernels {
        for &link in links {
            let mut t = Table::new(&[
                "size",
                "Host Kpps",
                "Con Kpps",
                "Falcon Kpps",
                "Con/Host",
                "Falcon/Host",
            ]);
            for &size in sizes {
                let host = rate(Mode::Host, kernel, link, size, scale);
                let con = rate(Mode::Vanilla, kernel, link, size, scale);
                let fal = rate(
                    Mode::Falcon(Scenario::sf_falcon()),
                    kernel,
                    link,
                    size,
                    scale,
                );
                best_recovery = best_recovery.max(fal / host.max(1.0));
                t.row(vec![
                    size.to_string(),
                    kpps(host),
                    kpps(con),
                    kpps(fal),
                    format!("{:.2}", con / host.max(1.0)),
                    format!("{:.2}", fal / host.max(1.0)),
                ]);
            }
            t_rows_note(&mut fig, kernel, link, t);
        }
    }
    fig.note(format!(
        "best Falcon/Host ratio: {best_recovery:.2} (paper: up to 0.87 on 100G)"
    ));
    fig
}

fn t_rows_note(fig: &mut FigResult, kernel: KernelVersion, link: LinkSpeed, t: Table) {
    fig.panel(&format!("kernel {} / {}", kernel.label(), link.label()), t);
}

//! Measurement substrate for the Falcon reproduction.
//!
//! Everything the paper's evaluation section reports is computed from
//! the primitives here:
//!
//! * [`Histogram`] — log-linear latency histograms with
//!   HdrHistogram-style bucketing (used for every latency figure).
//! * [`CpuLedger`] — per-core, per-context busy-time
//!   accounting plus per-kernel-function attribution (Figures 5, 6, 9a,
//!   11, 19 and the flamegraph-style profiles).
//! * [`IrqStats`] — hardware/software interrupt counters
//!   (Figure 4's NET_RX/RES comparison, Figure 19b).
//! * [`Profile`] — folded-stack export and per-function
//!   shares, the simulation's answer to `perf` + flamegraph.

pub mod cpu;
pub mod hist;
pub mod irq;
pub mod profile;
pub mod stats;

pub use cpu::{Context, CpuLedger};
pub use hist::Histogram;
pub use irq::{IrqKind, IrqStats};
pub use profile::Profile;
pub use stats::Summary;

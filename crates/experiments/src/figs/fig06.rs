//! Figure 6: flamegraph shares of the three poll functions, sockperf vs
//! memcached.
//!
//! The paper shows that a uniform micro-benchmark spreads overlay
//! overhead across roughly equally weighted softirqs, while a realistic
//! mixed workload makes certain softirqs dominate. We compute the share
//! of CPU attributed to each device's poll stage from the function
//! ledger.

use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{DataCaching, DataCachingConfig, UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, RunStats, Scale};
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{FigResult, Table};

/// Aggregates the ledger into the paper's three poll-function groups.
fn poll_shares(stats: &RunStats) -> [(&'static str, f64); 3] {
    let napi_poll = stats.func_ns("skb_allocation")
        + stats.func_ns("napi_gro_receive")
        + stats.func_ns("netif_receive_skb")
        + stats.func_ns("get_rps_cpu");
    let gro_cell = stats.func_ns("gro_cell_poll")
        + stats.func_ns("br_handle_frame")
        + stats.func_ns("veth_xmit");
    let backlog = stats.func_ns("process_backlog")
        + stats.func_ns("ip_rcv")
        + stats.func_ns("udp_rcv")
        + stats.func_ns("tcp_v4_rcv")
        + stats.func_ns("vxlan_rcv")
        + stats.func_ns("ip_defrag");
    let total = (napi_poll + gro_cell + backlog).max(1) as f64;
    [
        ("mlx5e_napi_poll", napi_poll as f64 / total),
        ("gro_cell_poll", gro_cell as f64 / total),
        ("process_backlog", backlog as f64 / total),
    ]
}

/// Shares of the three softirq poll stages under two workloads.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig6",
        "Poll-function CPU shares: sockperf (uniform) vs memcached (mixed)",
    );

    // sockperf: uniform 16-byte UDP.
    let scenario =
        Scenario::single_flow(Mode::Vanilla, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = UdpStressConfig::single_flow(16);
    cfg.senders_per_flow = 2;
    // Pacing is per sender thread: 2 x 125 kpps = 250 kpps aggregate.
    cfg.pacing = Pacing::FixedPps(125_000.0);
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    let sockperf = run_measured(&mut runner, scale);

    // memcached: a real mix — tiny GETs and multi-kilobyte SETs whose
    // datagrams fragment, dragging extra reassembly work into the
    // backlog stage.
    let scenario = Scenario::multi_flow(Mode::Vanilla, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut dc = DataCachingConfig::open_loop(4, 10_000.0);
    dc.object_size = 2_800;
    dc.get_ratio = 0.7;
    dc.tcp_fraction = 0.8;
    dc.app_cores = vec![8, 9, 10, 11, 12, 13];
    let mut runner = scenario.build(Box::new(DataCaching::new(dc)));
    let memcached = run_measured(&mut runner, scale);

    let mut t = Table::new(&["poll stage", "sockperf", "memcached"]);
    let s_shares = poll_shares(&sockperf);
    let m_shares = poll_shares(&memcached);
    for i in 0..3 {
        t.row(vec![
            s_shares[i].0.into(),
            format!("{:.1}%", s_shares[i].1 * 100.0),
            format!("{:.1}%", m_shares[i].1 * 100.0),
        ]);
    }
    fig.panel("", t);

    let s_spread = s_shares.iter().map(|s| s.1).fold(0.0f64, f64::max)
        / s_shares
            .iter()
            .map(|s| s.1)
            .fold(1.0f64, f64::min)
            .max(1e-9);
    let m_spread = m_shares.iter().map(|s| s.1).fold(0.0f64, f64::max)
        / m_shares
            .iter()
            .map(|s| s.1)
            .fold(1.0f64, f64::min)
            .max(1e-9);
    fig.note(format!(
        "stage-weight spread (max/min): sockperf {s_spread:.1}, memcached {m_spread:.1}"
    ));
    fig
}

//! Per-stage byte work of the wire-mode receive path.
//!
//! Each function is the real slice of work one pipeline stage performs
//! on the frame bytes, mirroring the modeled stages one-to-one:
//!
//! * pNIC poll — [`pnic_verify`]: outer parse, host-MAC filter, outer
//!   IPv4/UDP checksum verify (per segment).
//! * pNIC GRO half — [`gro_coalesce`]: coalesces contiguous TCP
//!   segments into one frame (runs inside the pNIC stage when the
//!   pipeline is unsplit, as its own stage under `split_gro`).
//! * VXLAN device — [`vxlan_decap`]: zero-copy offset-based decap via
//!   [`decap_bounds`] plus the VNI membership check.
//! * bridge — [`bridge_lookup`]: strict FDB lookup over the inner
//!   Ethernet header and [`dissect_flow`] keys.
//! * veth — [`deliver_verify`]: inner L4 checksum verify and the
//!   delivery digest over the application payload.
//!
//! Every failure maps to exactly one [`WireError`], which the executor
//! converts into a per-stage `DropReason::Malformed` count.

use falcon_khash::FlowKeys;
use falcon_packet::encap::{
    build_tcp_frame, decap_bounds, dissect_flow, fill_l4_checksum, verify_l4_checksum,
    vxlan_encapsulate, EncapParams,
};
use falcon_packet::{
    CodecError, EtherType, EthernetHdr, IpProto, Ipv4Hdr, MacAddr, TcpHdr, WireBuf,
    ETHERNET_HDR_LEN, IPV4_HDR_LEN, TCP_HDR_LEN, UDP_HDR_LEN,
};

use crate::{payload_digest, Fdb};

/// Why a stage rejected a packet's bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// A header failed to parse or a checksum failed to verify.
    Codec(CodecError),
    /// The outer destination MAC is not the host NIC's.
    NotOurMac,
    /// The VXLAN VNI does not name our overlay segment.
    VniMismatch {
        /// VNI carried by the envelope.
        got: u32,
        /// VNI of the overlay this dataplane serves.
        want: u32,
    },
    /// An inner MAC (source or destination) is not in the bridge FDB.
    FdbMiss,
    /// GRO saw segments of different flows in one packet.
    GroFlowMismatch,
    /// GRO saw a non-contiguous TCP sequence run.
    GroSeqGap,
    /// GRO was asked to coalesce non-TCP segments.
    GroNotTcp,
    /// A stage needed wire bytes the descriptor does not carry (or a
    /// pre-decap stage found an un-coalesced multi-segment buffer).
    NoBuffer,
}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> Self {
        WireError::Codec(e)
    }
}

impl core::fmt::Display for WireError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WireError::Codec(e) => write!(f, "{e}"),
            WireError::NotOurMac => write!(f, "outer dst MAC is not ours"),
            WireError::VniMismatch { got, want } => {
                write!(f, "VNI mismatch: got {got}, want {want}")
            }
            WireError::FdbMiss => write!(f, "inner MAC not in FDB"),
            WireError::GroFlowMismatch => write!(f, "GRO segments from different flows"),
            WireError::GroSeqGap => write!(f, "GRO sequence gap"),
            WireError::GroNotTcp => write!(f, "GRO on non-TCP segments"),
            WireError::NoBuffer => write!(f, "no wire buffer on descriptor"),
        }
    }
}

impl std::error::Error for WireError {}

/// pNIC poll: per segment, parse the outer Ethernet header, drop frames
/// not addressed to the host NIC, and verify the outer IPv4 header and
/// UDP checksums (a zero UDP checksum is legal per RFC 7348 §4.1 and
/// skipped, exactly the hardware rx-checksum-offload contract).
pub fn pnic_verify(buf: &WireBuf, host_mac: MacAddr) -> Result<(), WireError> {
    if buf.segs.is_empty() {
        return Err(WireError::NoBuffer);
    }
    for seg in &buf.segs {
        let eth = EthernetHdr::parse(seg)?;
        if eth.dst != host_mac {
            return Err(WireError::NotOurMac);
        }
        if eth.ethertype != EtherType::Ipv4 {
            return Err(WireError::Codec(CodecError::Malformed {
                what: "vxlan-outer",
                why: "not IPv4",
            }));
        }
        verify_l4_checksum(seg)?;
    }
    Ok(())
}

/// GRO: coalesce the segments of one logical packet into a single
/// frame. A single segment passes through untouched; multiple segments
/// must be same-flow TCP with a contiguous sequence run, and are merged
/// into one inner frame (first segment's headers over the concatenated
/// payload, checksum refreshed) re-encapsulated under the first
/// segment's envelope — byte-identical to what the sender would have
/// emitted without segmentation.
pub fn gro_coalesce(buf: &mut WireBuf) -> Result<(), WireError> {
    if buf.segs.is_empty() {
        return Err(WireError::NoBuffer);
    }
    if buf.segs.len() == 1 {
        return Ok(());
    }
    let mut payload = Vec::new();
    let mut head: Option<(EthernetHdr, Ipv4Hdr, TcpHdr, EncapParams)> = None;
    let mut expect_seq = 0u32;
    for seg in &buf.segs {
        let b = decap_bounds(seg)?;
        let inner = &seg[b.inner];
        // GRO only coalesces checksum-verified segments (the kernel's
        // tcp_gro_receive contract): the merge below re-checksums the
        // concatenated payload, so an unverified corrupt segment would
        // otherwise be laundered into a "valid" merged frame.
        verify_l4_checksum(inner)?;
        let ieth = EthernetHdr::parse(inner)?;
        let iip = Ipv4Hdr::parse(&inner[ETHERNET_HDR_LEN..])?;
        if iip.proto != IpProto::Tcp {
            return Err(WireError::GroNotTcp);
        }
        let l4_off = ETHERNET_HDR_LEN + IPV4_HDR_LEN;
        let l4_end = ETHERNET_HDR_LEN + iip.total_len as usize;
        if l4_end > inner.len() || l4_end < l4_off + TCP_HDR_LEN {
            return Err(WireError::Codec(CodecError::Truncated {
                what: "tcp",
                need: l4_off + TCP_HDR_LEN,
                have: inner.len(),
            }));
        }
        let itcp = TcpHdr::parse(&inner[l4_off..])?;
        let seg_payload = &inner[l4_off + TCP_HDR_LEN..l4_end];
        match &head {
            None => {
                // Reconstruct the envelope from the first segment so the
                // merged frame re-encapsulates identically.
                let oeth = EthernetHdr::parse(seg)?;
                let oip = Ipv4Hdr::parse(&seg[ETHERNET_HDR_LEN..])?;
                let oudp = falcon_packet::UdpHdr::parse(&seg[ETHERNET_HDR_LEN + IPV4_HDR_LEN..])?;
                let params = EncapParams {
                    src_mac: oeth.src,
                    dst_mac: oeth.dst,
                    src_ip: oip.src,
                    dst_ip: oip.dst,
                    src_port: oudp.src_port,
                    vni: b.vni,
                };
                expect_seq = itcp.seq;
                head = Some((ieth, iip, itcp, params));
            }
            Some((heth, hip, htcp, _)) => {
                let same_flow = ieth.src == heth.src
                    && ieth.dst == heth.dst
                    && iip.src == hip.src
                    && iip.dst == hip.dst
                    && itcp.src_port == htcp.src_port
                    && itcp.dst_port == htcp.dst_port;
                if !same_flow {
                    return Err(WireError::GroFlowMismatch);
                }
                if itcp.seq != expect_seq {
                    return Err(WireError::GroSeqGap);
                }
            }
        }
        expect_seq = expect_seq.wrapping_add(seg_payload.len() as u32);
        payload.extend_from_slice(seg_payload);
    }
    let (heth, hip, htcp, params) = head.expect("at least one segment parsed");
    let keys = FlowKeys::tcp(hip.src.0, htcp.src_port, hip.dst.0, htcp.dst_port);
    let mut merged = build_tcp_frame(
        heth.src,
        heth.dst,
        &keys,
        htcp.seq,
        htcp.ack,
        htcp.flags,
        htcp.window,
        &payload,
    );
    fill_l4_checksum(&mut merged)?;
    buf.set_single(vxlan_encapsulate(&merged, &params));
    buf.inner = None;
    Ok(())
}

/// VXLAN device: offset-based decap — record where the inner frame
/// lives instead of copying it out — plus the VNI membership check.
pub fn vxlan_decap(buf: &mut WireBuf, want_vni: u32) -> Result<(), WireError> {
    if buf.segs.len() != 1 {
        return Err(WireError::NoBuffer);
    }
    let b = decap_bounds(&buf.segs[0])?;
    if b.vni != want_vni {
        return Err(WireError::VniMismatch {
            got: b.vni,
            want: want_vni,
        });
    }
    buf.inner = Some(b.inner);
    Ok(())
}

/// Bridge: strict FDB lookup. Both inner MACs must be programmed (no
/// unknown-unicast flooding on the overlay), and the frame must dissect
/// to valid flow keys. Returns the egress bridge port.
pub fn bridge_lookup(buf: &WireBuf, fdb: &Fdb) -> Result<u16, WireError> {
    let inner = buf.inner_frame().ok_or(WireError::NoBuffer)?;
    let eth = EthernetHdr::parse(inner)?;
    fdb.lookup(eth.src).ok_or(WireError::FdbMiss)?;
    let port = fdb.lookup(eth.dst).ok_or(WireError::FdbMiss)?;
    dissect_flow(inner)?;
    Ok(port)
}

/// What the veth end handed to the container.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Digest of the application payload bytes.
    pub digest: u64,
    /// Application payload length in bytes (goodput numerator).
    pub payload_len: u64,
}

/// veth: verify the inner L4 checksum against its pseudo-header and
/// digest the application payload — the container-visible bytes.
pub fn deliver_verify(buf: &WireBuf) -> Result<Delivery, WireError> {
    let inner = buf.inner_frame().ok_or(WireError::NoBuffer)?;
    verify_l4_checksum(inner)?;
    let ip = Ipv4Hdr::parse(&inner[ETHERNET_HDR_LEN..])?;
    let l4_off = ETHERNET_HDR_LEN + IPV4_HDR_LEN;
    let l4_end = ETHERNET_HDR_LEN + ip.total_len as usize;
    let hdr_len = match ip.proto {
        IpProto::Tcp => TCP_HDR_LEN,
        IpProto::Udp => UDP_HDR_LEN,
        IpProto::Other(_) => {
            return Err(WireError::Codec(CodecError::Malformed {
                what: "deliver",
                why: "unsupported L4 protocol",
            }))
        }
    };
    // verify_l4_checksum already bounds-checked l4_end against the
    // frame and the header length against the L4 slice.
    let payload = &inner[l4_off + hdr_len..l4_end];
    Ok(Delivery {
        digest: payload_digest(payload),
        payload_len: payload.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FrameFactory;

    fn factory() -> FrameFactory {
        FrameFactory::default()
    }

    /// Runs the full unsplit receive chain on a buffer.
    fn rx(buf: &mut WireBuf, fdb: &Fdb, vni: u32) -> Result<Delivery, WireError> {
        pnic_verify(buf, FrameFactory::host_mac())?;
        gro_coalesce(buf)?;
        vxlan_decap(buf, vni)?;
        bridge_lookup(buf, fdb)?;
        deliver_verify(buf)
    }

    #[test]
    fn udp_chain_delivers_expected_digest() {
        let f = factory();
        let fdb = Fdb::for_flows(&f, 2);
        let mut buf = *WireBuf::segments(f.udp_wire(1, 5, 777));
        let d = rx(&mut buf, &fdb, f.vni).unwrap();
        assert_eq!(d.payload_len, 777);
        assert_eq!(d.digest, FrameFactory::expected_digest(1, 5, 777));
    }

    #[test]
    fn tcp_gro_chain_reconstructs_canonical_frame() {
        let f = factory();
        let fdb = Fdb::for_flows(&f, 2);
        let mut buf = *WireBuf::segments(f.tcp_wire(0, 3, 4096, 1448));
        assert_eq!(buf.segs.len(), 3);
        pnic_verify(&buf, FrameFactory::host_mac()).unwrap();
        gro_coalesce(&mut buf).unwrap();
        assert_eq!(buf.segs.len(), 1);
        // The merged outer frame must be byte-identical to an unsegmented
        // encapsulation of the canonical inner frame.
        let canonical = f.inner_frame(true, 0, 3, 4096);
        let expect_outer = falcon_packet::vxlan_encapsulate(&canonical, &f.encap_params(0));
        assert_eq!(buf.segs[0], expect_outer);
        vxlan_decap(&mut buf, f.vni).unwrap();
        assert_eq!(buf.inner_frame().unwrap(), &canonical[..]);
        bridge_lookup(&buf, &fdb).unwrap();
        let d = deliver_verify(&buf).unwrap();
        assert_eq!(d.payload_len, 4096);
        assert_eq!(d.digest, FrameFactory::expected_digest(0, 3, 4096));
    }

    #[test]
    fn wrong_host_mac_rejected_at_pnic() {
        let f = factory();
        let buf = *WireBuf::segments(f.udp_wire(0, 0, 64));
        assert_eq!(
            pnic_verify(&buf, MacAddr::from_index(0xBAD)),
            Err(WireError::NotOurMac)
        );
    }

    #[test]
    fn outer_ip_corruption_rejected_at_pnic() {
        let f = factory();
        let mut segs = f.udp_wire(0, 0, 64);
        segs[0][ETHERNET_HDR_LEN + 15] ^= 0x01; // outer IPv4 src byte
        let buf = *WireBuf::segments(segs);
        assert!(matches!(
            pnic_verify(&buf, FrameFactory::host_mac()),
            Err(WireError::Codec(CodecError::BadChecksum { what: "ipv4" }))
        ));
    }

    #[test]
    fn gro_gap_rejected() {
        let f = factory();
        let mut segs = f.tcp_wire(0, 0, 4096, 1448);
        segs.remove(1); // lose the middle segment
        let mut buf = *WireBuf::segments(segs);
        assert_eq!(gro_coalesce(&mut buf), Err(WireError::GroSeqGap));
    }

    #[test]
    fn gro_flow_mix_rejected() {
        let f = factory();
        let mut segs = f.tcp_wire(0, 0, 2896, 1448);
        segs[1] = f.tcp_wire(1, 0, 2896, 1448)[1].clone();
        let mut buf = *WireBuf::segments(segs);
        assert_eq!(gro_coalesce(&mut buf), Err(WireError::GroFlowMismatch));
    }

    #[test]
    fn vni_mismatch_rejected_at_decap() {
        let f = factory();
        let mut buf = *WireBuf::segments(f.udp_wire(0, 0, 64));
        assert_eq!(
            vxlan_decap(&mut buf, f.vni + 1),
            Err(WireError::VniMismatch {
                got: f.vni,
                want: f.vni + 1
            })
        );
    }

    #[test]
    fn unknown_inner_mac_rejected_at_bridge() {
        let f = factory();
        let fdb = Fdb::for_flows(&f, 1); // knows flow 0 only
        let mut buf = *WireBuf::segments(f.udp_wire(3, 0, 64));
        pnic_verify(&buf, FrameFactory::host_mac()).unwrap();
        vxlan_decap(&mut buf, f.vni).unwrap();
        assert_eq!(bridge_lookup(&buf, &fdb), Err(WireError::FdbMiss));
    }

    #[test]
    fn corrupt_segment_payload_rejected_at_gro_not_laundered() {
        // A payload flip inside one MSS segment must die at the GRO
        // stage — the merge re-checksums the concatenated payload, so
        // without the per-segment verify the flip would ride a freshly
        // "valid" checksum all the way to delivery.
        let f = factory();
        let mut segs = f.tcp_wire(0, 0, 4096, 1448);
        let last = segs[1].len() - 1;
        segs[1][last] ^= 0x04; // payload byte of the middle segment
        let mut buf = *WireBuf::segments(segs);
        pnic_verify(&buf, FrameFactory::host_mac()).unwrap();
        assert_eq!(
            gro_coalesce(&mut buf),
            Err(WireError::Codec(CodecError::BadChecksum { what: "tcp" }))
        );
    }

    #[test]
    fn inner_payload_corruption_rejected_at_veth() {
        let f = factory();
        let fdb = Fdb::for_flows(&f, 1);
        let mut segs = f.udp_wire(0, 0, 256);
        let last = segs[0].len() - 1;
        segs[0][last] ^= 0x80; // payload byte: only the inner L4 checksum sees it
        let mut buf = *WireBuf::segments(segs);
        pnic_verify(&buf, FrameFactory::host_mac()).unwrap();
        vxlan_decap(&mut buf, f.vni).unwrap();
        bridge_lookup(&buf, &fdb).unwrap();
        assert_eq!(
            deliver_verify(&buf),
            Err(WireError::Codec(CodecError::BadChecksum { what: "udp" }))
        );
    }
}

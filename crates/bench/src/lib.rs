//! Shared helpers for the benchmark suite.
//!
//! The benches live in `benches/`:
//!
//! * `primitives` — hash functions, packet codecs, histograms, RNG.
//! * `simulation` — event-engine and end-to-end simulation throughput
//!   (simulated packets per wall-clock second) for Host / Con / Falcon.
//! * `figures` — one representative measurement per paper figure,
//!   exercising each figure's workload generator and scenario through
//!   the experiment harness at quick scale.
//!
//! Full paper-scale sweeps are not benches; run them with
//! `falcon-repro` (see `crates/experiments`).

use falcon_experiments::measure::{run_measured, RunStats, Scale};
use falcon_experiments::scenario::{Mode, Scenario, SF_APP_CORE};
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

/// Builds and measures a standard single-flow UDP run; the common body
/// of several benches.
pub fn measure_single_flow_udp(mode: Mode, rate: f64, payload: usize) -> RunStats {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = UdpStressConfig::single_flow(payload);
    cfg.senders_per_flow = 2;
    cfg.pacing = Pacing::FixedPps(rate / 2.0);
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    run_measured(&mut runner, Scale::Quick)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helper_runs() {
        let stats = measure_single_flow_udp(Mode::Vanilla, 50_000.0, 16);
        assert!(stats.delivered > 100);
    }
}

//! Batched datagram receive behind one trait.
//!
//! [`MmsgRx`] drains the socket with `recvmmsg` — one syscall per
//! batch, the way a NAPI poll amortizes per-interrupt cost. [`LoopRx`]
//! is the portable fallback: a `recv` loop over the same nonblocking
//! socket with identical batch semantics, so everything above the
//! [`BatchRx`] trait behaves the same on any target (and the two
//! backends can be benchmarked against each other on Linux).
//!
//! Buffers are recycled: one flat set of `MAX_DATAGRAM` scratch
//! segments lives for the whole run, and each batch only rewrites
//! lengths. In pool mode ([`RecvBatch::with_pool`]) the scratch
//! buffers *are* slab-pool slots: a received datagram is handed
//! downstream by swapping its slot out for a freshly leased one
//! ([`RecvBatch::take_wire`]), so the kernel's copy into the iovec is
//! the only copy the frame ever sees. Without a pool, `take_wire`
//! falls back to the old copy-into-fresh-heap path.

use std::io;
use std::net::UdpSocket;

use falcon_packet::{RawSlot, SlabPool, SlabSeg, WireBuf};

use crate::sock;

/// Scratch buffer size per datagram. VXLAN outer frames in this
/// workspace stay under standard MTU; 2 KiB leaves headroom without
/// blowing the cache.
pub const MAX_DATAGRAM: usize = 2048;

/// Recycled receive scratch for one batch.
pub struct RecvBatch {
    /// Datagram scratch buffers, each `MAX_DATAGRAM` long. In pool
    /// mode these are decomposed slab slots (`origins` carries their
    /// pool identity) so the kernel writes straight into pool memory.
    bufs: Vec<Vec<u8>>,
    /// Pool identity of each scratch buffer (inert default entries in
    /// heap mode).
    origins: Vec<RawSlot>,
    /// Valid length of each received datagram.
    lens: Vec<usize>,
    /// Datagrams valid in this batch (set by the last `recv_batch`).
    count: usize,
    /// The slab pool backing the scratch slots, if any.
    pool: Option<SlabPool>,
    /// Latest cumulative `SO_RXQ_OVFL` reading, if the kernel attached
    /// one to any datagram so far.
    pub sock_drops: Option<u64>,
}

impl RecvBatch {
    /// Allocates plain heap scratch for up to `batch` datagrams per
    /// read ([`RecvBatch::take_wire`] copies).
    pub fn new(batch: usize) -> RecvBatch {
        let batch = batch.max(1);
        RecvBatch {
            bufs: (0..batch).map(|_| vec![0u8; MAX_DATAGRAM]).collect(),
            origins: (0..batch).map(|_| RawSlot::default()).collect(),
            lens: vec![0; batch],
            count: 0,
            pool: None,
            sock_drops: None,
        }
    }

    /// Leases the scratch buffers from a slab pool: datagrams land
    /// directly in pool slots and [`RecvBatch::take_wire`] hands them
    /// downstream zero-copy. The pool also supplies the recycled
    /// `WireBuf` shells.
    pub fn with_pool(batch: usize, mut pool: SlabPool) -> RecvBatch {
        let batch = batch.max(1);
        let (mut bufs, mut origins) = (Vec::with_capacity(batch), Vec::with_capacity(batch));
        for _ in 0..batch {
            let (buf, origin) = pool.acquire(MAX_DATAGRAM).into_raw();
            bufs.push(buf);
            origins.push(origin);
        }
        RecvBatch {
            bufs,
            origins,
            lens: vec![0; batch],
            count: 0,
            pool: Some(pool),
            sock_drops: None,
        }
    }

    /// The slab pool backing this scratch, if pool mode is on.
    pub fn pool(&self) -> Option<&SlabPool> {
        self.pool.as_ref()
    }

    /// Drains the pool's return rings (recycled downstream buffers
    /// back onto the freelists). No-op in heap mode.
    pub fn drain_returns(&mut self) {
        if let Some(pool) = self.pool.as_mut() {
            pool.drain_returns();
        }
    }

    /// Max datagrams per read.
    pub fn capacity(&self) -> usize {
        self.bufs.len()
    }

    /// The datagrams received by the last `recv_batch` call.
    pub fn datagrams(&self) -> impl Iterator<Item = &[u8]> {
        self.bufs
            .iter()
            .zip(self.lens.iter())
            .take(self.count)
            .map(|(b, &l)| &b[..l.min(MAX_DATAGRAM)])
    }

    /// Datagram `i` of the last batch.
    pub fn datagram(&self, i: usize) -> &[u8] {
        debug_assert!(i < self.count);
        &self.bufs[i][..self.lens[i].min(MAX_DATAGRAM)]
    }

    /// Takes datagram `i` out of the batch as an owned `WireBuf`.
    ///
    /// Pool mode: the filled slot itself moves into the buffer (its
    /// scratch position is refilled with a freshly leased slot), so no
    /// bytes are copied — the kernel's write into the iovec was the
    /// frame's only copy. Heap mode: falls back to the historical
    /// copy into a fresh heap segment. Either way the result is
    /// indistinguishable downstream.
    pub fn take_wire(&mut self, i: usize) -> Box<WireBuf> {
        debug_assert!(i < self.count);
        let len = self.lens[i].min(MAX_DATAGRAM);
        let Some(pool) = self.pool.as_mut() else {
            return WireBuf::from_datagram(&self.bufs[i][..len]);
        };
        let (mut buf, mut origin) = pool.acquire(MAX_DATAGRAM).into_raw();
        std::mem::swap(&mut self.bufs[i], &mut buf);
        std::mem::swap(&mut self.origins[i], &mut origin);
        let mut seg = SlabSeg::from_raw(buf, origin);
        seg.truncate(len);
        let mut wire = pool.lease_shell();
        wire.segs.push(seg);
        wire
    }
}

impl Drop for RecvBatch {
    /// Reattaches the scratch slots to their pool identities so they
    /// return to the freelists instead of leaking until pool teardown.
    fn drop(&mut self) {
        if self.pool.is_some() {
            for (buf, origin) in self.bufs.drain(..).zip(self.origins.drain(..)) {
                drop(SlabSeg::from_raw(buf, origin));
            }
        }
    }
}

/// One batched, nonblocking read of up to `batch.capacity()` datagrams.
pub trait BatchRx: Send {
    /// Fills `batch` and returns how many datagrams arrived. An empty
    /// queue is `Err(WouldBlock)`, never `Ok(0)`.
    fn recv_batch(&mut self, batch: &mut RecvBatch) -> io::Result<usize>;

    /// Backend name for reports ("recvmmsg" or "recv-loop").
    fn backend(&self) -> &'static str;
}

/// `recvmmsg`-backed receive (Linux).
pub struct MmsgRx {
    sock: UdpSocket,
}

impl BatchRx for MmsgRx {
    fn recv_batch(&mut self, batch: &mut RecvBatch) -> io::Result<usize> {
        let mut ovfl = None;
        let n = sock::recv_batch(&self.sock, &mut batch.bufs, &mut batch.lens, &mut ovfl)?;
        if let Some(v) = ovfl {
            batch.sock_drops = Some(v);
        }
        batch.count = n;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "empty batch"));
        }
        Ok(n)
    }

    fn backend(&self) -> &'static str {
        "recvmmsg"
    }
}

/// Portable fallback: a `recv` loop with the same batch semantics.
pub struct LoopRx {
    sock: UdpSocket,
}

impl BatchRx for LoopRx {
    fn recv_batch(&mut self, batch: &mut RecvBatch) -> io::Result<usize> {
        let mut n = 0;
        while n < batch.capacity() {
            match self.sock.recv(&mut batch.bufs[n]) {
                Ok(len) => {
                    batch.lens[n] = len;
                    n += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        batch.count = n;
        if n == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "empty batch"));
        }
        Ok(n)
    }

    fn backend(&self) -> &'static str {
        "recv-loop"
    }
}

/// Wraps a bound socket in the best available backend: `recvmmsg`
/// where compiled in, the portable loop elsewhere (or on request).
/// Marks the socket nonblocking and asks for the kernel-drop counter.
pub fn batch_rx(sock: UdpSocket, force_portable: bool) -> io::Result<Box<dyn BatchRx>> {
    sock.set_nonblocking(true)?;
    sock::enable_rxq_ovfl(&sock);
    if sock::batched_io_available() && !force_portable {
        Ok(Box::new(MmsgRx { sock }))
    } else {
        Ok(Box::new(LoopRx { sock }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (UdpSocket, UdpSocket) {
        let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
        let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
        tx.connect(rx.local_addr().unwrap()).unwrap();
        (rx, tx)
    }

    fn drain(rx: &mut dyn BatchRx, batch: &mut RecvBatch, want: usize) -> Vec<Vec<u8>> {
        let mut out = Vec::new();
        for _ in 0..10_000 {
            match rx.recv_batch(batch) {
                Ok(_) => {
                    out.extend(batch.datagrams().map(|d| d.to_vec()));
                    if out.len() >= want {
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(std::time::Duration::from_micros(100));
                }
                Err(e) => panic!("recv: {e}"),
            }
        }
        out
    }

    /// Both backends must present identical datagram streams.
    #[test]
    fn backends_agree_on_loopback() {
        for portable in [true, false] {
            let (rxs, tx) = pair();
            let mut rx = batch_rx(rxs, portable).unwrap();
            let frames: Vec<Vec<u8>> = (0..20u8).map(|i| vec![i; 60 + i as usize]).collect();
            sock::send_batch(&tx, &frames).unwrap();
            let mut batch = RecvBatch::new(7);
            let got = drain(rx.as_mut(), &mut batch, frames.len());
            assert_eq!(got, frames, "backend {}", rx.backend());
        }
    }

    /// Pool-backed scratch must hand out the same bytes as heap
    /// scratch, zero-copy, with every slot accounted for.
    #[test]
    fn pooled_take_wire_matches_heap_and_recycles() {
        use falcon_packet::{SlabConfig, SlabPool};
        for portable in [true, false] {
            let (rxs, tx) = pair();
            let mut rx = batch_rx(rxs, portable).unwrap();
            let frames: Vec<Vec<u8>> = (0..12u8).map(|i| vec![i; 100 + i as usize]).collect();
            sock::send_batch(&tx, &frames).unwrap();
            let mut batch = RecvBatch::with_pool(4, SlabPool::new(SlabConfig::default()));
            let mut got = Vec::new();
            for _ in 0..10_000 {
                match rx.recv_batch(&mut batch) {
                    Ok(n) => {
                        for i in 0..n {
                            let wire = batch.take_wire(i);
                            assert!(
                                wire.segs[0].is_pooled(),
                                "pool-mode datagram must ride a slab slot"
                            );
                            got.push(wire.segs[0].to_vec());
                            assert!(falcon_packet::slab::recycle(wire));
                        }
                        if got.len() >= frames.len() {
                            break;
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(std::time::Duration::from_micros(100));
                    }
                    Err(e) => panic!("recv: {e}"),
                }
            }
            assert_eq!(got, frames, "backend {}", rx.backend());
            batch.drain_returns();
            let counters = batch.pool().unwrap().counters();
            let snap = counters.snapshot();
            assert_eq!(snap.fallbacks, 0, "default pool must never fall back");
            // Every datagram leased a replacement slot, and every
            // recycled buffer (one shell + one seg each) made it back
            // onto the freelists.
            assert!(snap.leases >= frames.len() as u64);
            assert_eq!(snap.returns, 2 * frames.len() as u64);
            assert_eq!(snap.recycles, frames.len() as u64);
            assert_eq!(snap.gen_errors, 0);
        }
    }

    #[test]
    fn empty_queue_is_would_block_for_both_backends() {
        for portable in [true, false] {
            let (rxs, _tx) = pair();
            let mut rx = batch_rx(rxs, portable).unwrap();
            let mut batch = RecvBatch::new(4);
            let err = rx.recv_batch(&mut batch).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        }
    }
}

//! Ingest conformance: real datagrams through real sockets must obey
//! the same books as synthetic injection — with the socket's own
//! failure modes accounted for explicitly.
//!
//! The contract under test: (1) the differential oracle holds
//! end-to-end under both steering policies, pristine and with the
//! pre-send corruptor flipping bits; (2) deliberate socket loss (the
//! lossy harness suppresses every Nth frame at the sender) is
//! *conserved* — delivered + malformed + other drops + runts +
//! socket loss == sent, and what does arrive is still in per-flow
//! arrival order; (3) the rx thread's telemetry counters stream
//! through the live sampler as their own `"kind":"rx"` JSONL lines
//! without disturbing the worker-sample stream.

use falcon_dataplane::{PolicyKind, TelemetrySpec};
use falcon_ingest::{run_ingest, IngestConfig};

/// CI-sized live run: small enough for loopback on a shared runner,
/// large enough that batching engages and every flow sees traffic.
fn quick_cfg(policy: PolicyKind) -> IngestConfig {
    IngestConfig {
        policy,
        workers: 2,
        packets: 4_000,
        flows: 4,
        payload: 128,
        work_scale_milli: 20,
        oversubscribe: true,
        ..IngestConfig::default()
    }
}

/// ISSUE acceptance: the oracle passes end-to-end under both steering
/// policies.
#[test]
fn oracle_green_under_both_policies() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        let run = run_ingest(&quick_cfg(policy)).expect("run");
        assert!(
            run.oracle.ok,
            "{policy:?}: oracle failed: {:?}",
            run.oracle.errors
        );
        assert_eq!(run.sent.sent, 4_000, "{policy:?}");
        assert!(run.out.delivered() > 0, "{policy:?}: deliveries happened");
        // Pristine loopback at this size: no runts, rx conservation
        // exact.
        assert_eq!(run.rx.runts, 0, "{policy:?}");
        assert_eq!(run.rx.injected, run.rx.datagrams, "{policy:?}");
        assert_eq!(run.out.injected, run.rx.injected, "{policy:?}");
    }
}

/// ISSUE acceptance: the oracle still passes with the corruptor
/// enabled — corrupted frames become malformed drops (or, for flips in
/// non-checksummed header bytes, misattributed deliveries bounded by
/// the flip count), never silent wrong-byte deliveries.
#[test]
fn oracle_green_with_corruptor_under_both_policies() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        let cfg = IngestConfig {
            corrupt_per_million: 80_000, // ~8 % of frames
            seed: 11,
            ..quick_cfg(policy)
        };
        let run = run_ingest(&cfg).expect("run");
        assert!(run.sent.corrupted > 0, "{policy:?}: corruptor engaged");
        assert!(
            run.oracle.ok,
            "{policy:?}: oracle failed under corruption: {:?}",
            run.oracle.errors
        );
        assert!(
            run.oracle.malformed > 0,
            "{policy:?}: stages caught none of {} corrupt frames",
            run.sent.corrupted
        );
        // Strays are bounded by what the corruptor touched.
        assert!(
            run.oracle.digest_mismatches + run.oracle.misattributed <= run.sent.corrupted,
            "{policy:?}"
        );
    }
}

/// Satellite: the lossy-socket harness. Every Nth frame is suppressed
/// at the sender; the oracle's conservation identity must name that
/// loss exactly, and the frames that did arrive must still be in
/// per-flow send order.
#[test]
fn lossy_socket_conserves_and_keeps_per_flow_order() {
    let cfg = IngestConfig {
        drop_every_n: 7,
        ..quick_cfg(PolicyKind::Falcon)
    };
    let run = run_ingest(&cfg).expect("run");
    assert_eq!(
        run.sent.suppressed,
        4_000 / 7,
        "harness suppressed every 7th"
    );
    assert!(
        run.oracle.ok,
        "oracle failed under deliberate loss: {:?}",
        run.oracle.errors
    );
    // Loss is explicit: at least the suppressed frames are socket
    // loss, and conservation closed (oracle.ok checked it; re-derive
    // the headline identity here for the record).
    assert!(run.oracle.socket_loss >= run.sent.suppressed);
    let other_drops = run.out.dropped() - run.oracle.malformed.min(run.out.dropped());
    assert_eq!(
        run.out.delivered()
            + run.oracle.malformed
            + other_drops
            + run.rx.runts
            + run.oracle.socket_loss,
        run.sent.sent,
        "delivered + malformed + drops + runts + socket_loss == sent"
    );
    // Per-flow arrival order: every flow's delivered digests are an
    // in-order subsequence (oracle.ok), and with a gap-only fault
    // model nothing is misattributed.
    assert_eq!(run.oracle.digest_mismatches, 0);
    assert_eq!(run.oracle.misattributed, 0);
}

/// The lossy harness composed with corruption: both fault models at
/// once, books still closed.
#[test]
fn loss_and_corruption_compose() {
    let cfg = IngestConfig {
        drop_every_n: 9,
        corrupt_per_million: 50_000,
        seed: 23,
        ..quick_cfg(PolicyKind::Falcon)
    };
    let run = run_ingest(&cfg).expect("run");
    assert!(run.sent.suppressed > 0);
    assert!(run.sent.corrupted > 0);
    assert!(
        run.oracle.ok,
        "oracle failed under loss+corruption: {:?}",
        run.oracle.errors
    );
}

/// Rx-thread telemetry: with the live sampler attached, the rx
/// counters stream as `"kind":"rx"` lines alongside (not inside) the
/// worker sample stream, their deltas re-add to the run's rx totals,
/// and the run summary carries the final snapshot.
#[test]
fn rx_counters_stream_through_live_sampler() {
    let dir = std::env::temp_dir().join("falcon-ingest-conformance");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("rx-stream-{}.jsonl", std::process::id()));
    let cfg = IngestConfig {
        packets: 8_000,
        telemetry: Some(TelemetrySpec {
            interval_ms: 1,
            jsonl_path: Some(path.to_string_lossy().into_owned()),
            ..TelemetrySpec::default()
        }),
        ..quick_cfg(PolicyKind::Falcon)
    };
    let run = run_ingest(&cfg).expect("run");
    assert!(run.oracle.ok, "{:?}", run.oracle.errors);
    let telem = run.out.telemetry.as_ref().expect("telemetry enabled");
    let rx_totals = telem.rx_totals.as_ref().expect("rx totals in summary");
    assert_eq!(
        rx_totals.datagrams, run.rx.datagrams,
        "summary matches rx thread"
    );

    let text = std::fs::read_to_string(&path).unwrap();
    let mut rx_lines = 0u64;
    let mut datagrams_from_deltas = 0u64;
    let mut sample_lines = 0u64;
    let mut slab_lines = 0u64;
    let mut leases_from_deltas = 0u64;
    for (i, line) in text.lines().enumerate() {
        let v: serde::Value = serde_json::from_str(line).expect("line parses");
        let kind = v.get("kind").and_then(serde::Value::as_str).unwrap();
        if i == 0 {
            assert_eq!(kind, "header");
            continue;
        }
        match kind {
            "sample" => sample_lines += 1,
            "rx" => {
                rx_lines += 1;
                datagrams_from_deltas += v.get("datagrams").and_then(serde::Value::as_u64).unwrap();
                // Cumulative gauge rides every rx line.
                assert!(v.get("sock_drops_total").is_some());
            }
            "slab" => {
                slab_lines += 1;
                leases_from_deltas += v.get("leases").and_then(serde::Value::as_u64).unwrap();
                // Cumulative fallback gauge rides every slab line.
                assert!(v.get("fallbacks_total").is_some());
            }
            other => panic!("unexpected line kind {other:?}"),
        }
    }
    assert!(sample_lines > 0, "worker stream still present");
    assert!(rx_lines > 0, "rx stream present");
    assert!(slab_lines > 0, "slab pool stream present");
    assert_eq!(
        datagrams_from_deltas, run.rx.datagrams,
        "rx JSONL deltas re-add to the rx thread's datagram count"
    );
    assert!(
        leases_from_deltas >= run.rx.injected,
        "every injected datagram rode a leased slab slot"
    );
    std::fs::remove_file(&path).ok();
}

/// The portable `recv` loop backend sees the same world as
/// `recvmmsg`: oracle green, identical conservation.
#[test]
fn portable_rx_backend_conforms() {
    let cfg = IngestConfig {
        force_portable_rx: true,
        ..quick_cfg(PolicyKind::Falcon)
    };
    let run = run_ingest(&cfg).expect("run");
    assert_eq!(run.rx.backend, "recv-loop");
    assert!(run.oracle.ok, "{:?}", run.oracle.errors);
    assert_eq!(run.out.injected, run.rx.injected);
}

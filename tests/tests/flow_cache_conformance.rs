//! Flow-verdict cache differential conformance: the cached fast path
//! must be observationally identical to the uncached slow path.
//!
//! The per-worker flow cache (`--flow-cache`) skips the modeled decap
//! and bridge work for flows whose slow-path verdict is cached. That is
//! only sound if skipping is *unobservable*: every run here executes
//! the same scenario twice — cache off, cache on — and demands the
//! exact same multiset of delivered `(flow, seq, payload digest)`
//! triples, the same drop accounting by reason, the same per-stage
//! malformed counts, and a clean per-(flow, device) order audit on both
//! legs. Corruption and chaos steering are layered on top: a flipped
//! frame must die at the same stage with the cache on, because a flip
//! in any byte the fast path stops re-checking also changes the cache
//! key (miss → full slow path), while flips in the masked per-packet
//! fields are caught by the delivery stage's inner checksum, which the
//! cache never skips.
//!
//! The FDB-churn tests are the invalidation oracle: unprogramming a
//! MAC mid-run bumps the shared epoch, and no packet may ever deliver
//! through the dead cached verdict — stale hits must re-verify against
//! the live table and drop at the bridge stage like the uncached leg.

use falcon_dataplane::{
    rss_hash_for_flow, run_scenario, run_scenario_from, Injector, PolicyKind, RunOutput, Scenario,
    TrafficShape,
};
use falcon_integration_tests::assert_wire_conforms;
use falcon_packet::{PktDesc, WireBuf};
use falcon_trace::DropReason;
use falcon_wire::FrameFactory;

/// A traced wire-mode scenario sized for invariant checking (same
/// shape discipline as `wire_conformance.rs`), with a ring deep enough
/// that backpressure can never drop a packet: ring drops are
/// timing-dependent, and a differential comparison needs both legs to
/// see the identical packet population.
fn wire_scenario(policy: PolicyKind, workers: usize, flows: u64, packets: u64) -> Scenario {
    Scenario {
        policy,
        workers,
        flows,
        packets,
        payload: 512,
        work_scale_milli: 100,
        inject_gap_ns: 0,
        pin: false,
        oversubscribe: true,
        trace_capacity: 1 << 18,
        ring_capacity: 1 << 15,
        wire: true,
        ..Scenario::default()
    }
}

/// Same, on the Figure-13 TCP-4KB split-GRO shape.
fn wire_split_scenario(policy: PolicyKind, workers: usize, flows: u64, packets: u64) -> Scenario {
    let mut s = wire_scenario(policy, workers, flows, packets);
    s.split_gro = true;
    s.shape = TrafficShape::TcpGro { mss: 1448 };
    s.payload = 4096;
    s
}

/// The cached leg of a differential pair.
fn cached(mut s: Scenario, entries: usize) -> Scenario {
    s.flow_cache = true;
    s.flow_cache_entries = entries;
    s
}

/// The differential oracle: cache on vs cache off must be
/// observationally identical, and both legs must be loss-free at the
/// rings (so the comparison covers the same packets).
fn assert_differential(uncached: &RunOutput, with_cache: &RunOutput, payload: usize) {
    for (leg, out) in [("uncached", uncached), ("cached", with_cache)] {
        assert_eq!(
            out.drops_by_reason()[DropReason::Ring.index()],
            0,
            "{leg} leg dropped at a ring; differential runs must be sized loss-free"
        );
        assert_wire_conforms(out, payload);
    }
    let mut a = uncached.deliveries();
    let mut b = with_cache.deliveries();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(
        a, b,
        "cached leg delivered a different (flow, seq, digest) multiset"
    );
    assert_eq!(
        uncached.drops_by_reason(),
        with_cache.drops_by_reason(),
        "cached leg changed drop accounting"
    );
    assert_eq!(
        uncached.malformed_per_stage(),
        with_cache.malformed_per_stage(),
        "cached leg moved a malformed drop to a different stage"
    );
}

/// Corruption off, four-stage UDP shape, both steering policies: the
/// cached leg is byte-identical and actually exercises the fast path.
#[test]
fn cached_udp_matches_uncached_under_both_policies() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        let s = wire_scenario(policy, 2, 3, 3_000);
        let uncached = run_scenario(&s);
        let hot = run_scenario(&cached(s.clone(), 4096));
        let stats = hot.flow_cache_stats();
        assert!(stats.hits > 0, "{policy:?} cached leg never hit");
        assert_eq!(
            uncached.flow_cache_stats().hits,
            0,
            "cache-off leg consulted a cache"
        );
        assert_differential(&uncached, &hot, s.payload);
    }
}

/// Corruption off, five-stage split-GRO TCP shape, both policies: the
/// multi-segment trains only consult the cache after coalescing, and
/// the reassembled digests still match exactly.
#[test]
fn cached_split_gro_matches_uncached_under_both_policies() {
    for policy in [PolicyKind::Vanilla, PolicyKind::Falcon] {
        let s = wire_split_scenario(policy, 3, 2, 1_200);
        let uncached = run_scenario(&s);
        let hot = run_scenario(&cached(s.clone(), 4096));
        assert!(hot.flow_cache_stats().hits > 0);
        assert_differential(&uncached, &hot, s.payload);
    }
}

/// Corruption on: ~30 % of wire segments get one flipped bit. Every
/// corrupted frame must die at the same stage — or deliver bit-exact —
/// whether or not the cache is in front of the slow path.
#[test]
fn cached_corruption_drops_at_identical_stages() {
    let mut s = wire_scenario(PolicyKind::Falcon, 2, 3, 4_000);
    s.corrupt_per_million = 300_000;
    s.wire_seed = 7;
    let uncached = run_scenario(&s);
    assert!(uncached.corrupted_segments > 0, "the corruptor never fired");
    let hot = run_scenario(&cached(s.clone(), 4096));
    assert_eq!(
        uncached.corrupted_segments, hot.corrupted_segments,
        "the seeded corruptor must flip the same segments on both legs"
    );
    assert!(
        uncached.drops_by_reason()[DropReason::Malformed.index()] > 0,
        "30 % corruption must kill some frames"
    );
    assert!(
        hot.flow_cache_stats().hits > 0,
        "clean frames must still hit"
    );
    assert_differential(&uncached, &hot, s.payload);
}

/// Corruption and chaos steering together on the split shape: forced
/// migrations bounce flows across workers (each with a private cache)
/// while malformed segments drop mid-GRO — the books still match.
#[test]
fn cached_corruption_survives_chaos_steering_on_split_shape() {
    let mut s = wire_split_scenario(PolicyKind::Falcon, 3, 2, 1_200);
    s.corrupt_per_million = 200_000;
    s.wire_seed = 21;
    s.chaos_steer_period = 2;
    let uncached = run_scenario(&s);
    assert!(uncached.corrupted_segments > 0, "the corruptor never fired");
    let hot = run_scenario(&cached(s.clone(), 4096));
    assert!(hot.flow_cache_stats().hits > 0);
    assert_differential(&uncached, &hot, s.payload);
}

/// The acceptance workload: a steady flow set that fits the cache must
/// clear a 90 % hit rate (each worker pays one miss per flow per stage
/// it runs, then hits forever) with zero evictions or invalidations.
#[test]
fn steady_flows_clear_ninety_percent_hit_rate() {
    let s = cached(wire_scenario(PolicyKind::Falcon, 2, 3, 6_000), 4096);
    let out = run_scenario(&s);
    let stats = out.flow_cache_stats();
    assert!(
        out.flow_cache_hit_rate() >= 0.9,
        "steady-flow hit rate must clear 0.9, got {} ({stats:?})",
        out.flow_cache_hit_rate()
    );
    assert_eq!(stats.evictions, 0, "3 flows cannot evict from 4096 entries");
    assert_eq!(stats.invalidations, 0, "nothing churned the FDB");
    assert_wire_conforms(&out, s.payload);
}

/// A deliberately tiny cache under many flows: CLOCK eviction fires
/// constantly, and thrashing must only cost hit rate — never
/// correctness.
#[test]
fn tiny_cache_thrashes_safely_under_many_flows() {
    let s = wire_scenario(PolicyKind::Falcon, 2, 64, 3_200);
    let uncached = run_scenario(&s);
    let hot = run_scenario(&cached(s.clone(), 8));
    let stats = hot.flow_cache_stats();
    assert!(
        stats.evictions > 0,
        "64 flows through 8 entries must evict ({stats:?})"
    );
    assert_differential(&uncached, &hot, s.payload);
}

/// Two-phase scripted source for the FDB-churn oracle: inject
/// `per_phase` packets round-robin over `flows`, quiesce, unprogram
/// flow 0's destination MAC (bumping the invalidation epoch), then
/// inject `per_phase` more. Phase-two flow-0 frames have no FDB entry,
/// so every one must drop at the bridge stage — cached or not.
fn churn_source(flows: u64, per_phase: u64) -> impl FnOnce(&mut Injector) + Send + 'static {
    move |inj: &mut Injector| {
        let factory = FrameFactory::default();
        let payload = 512usize;
        let mut id = 0u64;
        let mut seqs = vec![0u64; flows as usize];
        let phase = |inj: &mut Injector, seqs: &mut Vec<u64>, id: &mut u64| {
            for i in 0..per_phase {
                let flow = i % flows;
                let seq = seqs[flow as usize];
                seqs[flow as usize] += 1;
                let desc = PktDesc::new(*id, flow, seq, rss_hash_for_flow(flow), payload as u32)
                    .with_wire(WireBuf::segments(factory.udp_wire(flow, seq, payload)));
                inj.inject(desc);
                *id += 1;
            }
        };
        phase(inj, &mut seqs, &mut id);
        // Quiesce before touching the FDB: no packet in flight can
        // race the mutation, so the phase boundary is exact.
        inj.wait_quiesced();
        let (_src, dst) = factory.inner_macs(0);
        let shared = inj.fdb().expect("wire runs share an FDB with the injector");
        assert_eq!(shared.epoch(), 0, "nothing else may churn the table");
        shared
            .remove(dst)
            .expect("flow 0's veth MAC was programmed");
        phase(inj, &mut seqs, &mut id);
    }
}

/// Runs the churn script and checks the parts both legs must satisfy:
/// loss-free rings, full phase-1 delivery, zero flow-0 deliveries past
/// the flip, and every phase-two flow-0 packet dropped at the bridge.
fn assert_churn_books(out: &RunOutput, flows: u64, per_phase: u64) {
    let phase_per_flow = per_phase / flows;
    assert_eq!(out.drops_by_reason()[DropReason::Ring.index()], 0);
    assert_wire_conforms(out, 512);
    let deliveries = out.deliveries();
    let flow0: Vec<_> = deliveries.iter().filter(|(f, _, _)| *f == 0).collect();
    assert_eq!(
        flow0.len() as u64,
        phase_per_flow,
        "flow 0 must deliver exactly its phase-1 packets"
    );
    assert!(
        flow0.iter().all(|(_, seq, _)| *seq < phase_per_flow),
        "a flow-0 packet delivered through the unprogrammed MAC"
    );
    for f in 1..flows {
        let n = deliveries.iter().filter(|(flow, _, _)| *flow == f).count() as u64;
        assert_eq!(
            n,
            2 * phase_per_flow,
            "untouched flow {f} must lose nothing"
        );
    }
    // Every phase-two flow-0 packet dies at the bridge stage (stage 2
    // of the four-hop shape), counted as malformed there.
    assert_eq!(
        out.drops_by_reason()[DropReason::Malformed.index()],
        phase_per_flow
    );
    assert_eq!(out.malformed_per_stage()[2], phase_per_flow);
}

/// The tentpole's invalidation guarantee, differentially: flipping a
/// MAC → port mapping mid-run bumps the epoch, stale verdicts
/// re-verify, and no packet ever delivers through the dead entry. The
/// cached and uncached legs agree byte for byte.
#[test]
fn fdb_churn_never_delivers_through_a_stale_entry() {
    let flows = 2u64;
    let per_phase = 400u64;
    let mut s = wire_scenario(PolicyKind::Falcon, 2, flows, 2 * per_phase);
    let (uncached, ()) = run_scenario_from(&s, churn_source(flows, per_phase));
    assert_churn_books(&uncached, flows, per_phase);

    s.flow_cache = true;
    s.flow_cache_entries = 4096;
    let (hot, ()) = run_scenario_from(&s, churn_source(flows, per_phase));
    assert_churn_books(&hot, flows, per_phase);
    let stats = hot.flow_cache_stats();
    assert!(stats.hits > 0, "phase 1 must populate and hit the cache");
    assert!(
        stats.invalidations > 0,
        "the epoch bump must surface as stale-entry invalidations ({stats:?})"
    );

    let mut a = uncached.deliveries();
    let mut b = hot.deliveries();
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "churn legs disagree on delivered (flow, seq, digest)");
    assert_eq!(uncached.drops_by_reason(), hot.drops_by_reason());
    assert_eq!(uncached.malformed_per_stage(), hot.malformed_per_stage());
}

/// Re-pointing (rather than removing) a MAC mid-run: flow 0 keeps
/// delivering after the flip — the bridge still knows the MAC — but a
/// cached run must take the epoch bump, invalidate, and re-verify
/// instead of serving the verdict proven against the old table.
#[test]
fn fdb_repoint_invalidates_but_keeps_delivering() {
    let flows = 2u64;
    let per_phase = 400u64;
    let phase_per_flow = per_phase / flows;
    let source = move |inj: &mut Injector| {
        let factory = FrameFactory::default();
        let payload = 512usize;
        let mut id = 0u64;
        let mut seqs = vec![0u64; flows as usize];
        let phase = |inj: &mut Injector, seqs: &mut Vec<u64>, id: &mut u64| {
            for i in 0..per_phase {
                let flow = i % flows;
                let seq = seqs[flow as usize];
                seqs[flow as usize] += 1;
                let desc = PktDesc::new(*id, flow, seq, rss_hash_for_flow(flow), payload as u32)
                    .with_wire(WireBuf::segments(factory.udp_wire(flow, seq, payload)));
                inj.inject(desc);
                *id += 1;
            }
        };
        phase(inj, &mut seqs, &mut id);
        inj.wait_quiesced();
        let (_src, dst) = factory.inner_macs(0);
        let shared = inj.fdb().expect("wire runs share an FDB with the injector");
        shared.set(dst, 0x7ABC);
        phase(inj, &mut seqs, &mut id);
    };

    let mut s = wire_scenario(PolicyKind::Falcon, 2, flows, 2 * per_phase);
    s.flow_cache = true;
    s.flow_cache_entries = 4096;
    let (out, ()) = run_scenario_from(&s, source);
    assert_eq!(out.drops_by_reason()[DropReason::Ring.index()], 0);
    assert_wire_conforms(&out, 512);
    assert_eq!(out.delivered(), 2 * per_phase, "a re-point loses nothing");
    let stats = out.flow_cache_stats();
    assert!(stats.hits > 0);
    assert!(
        stats.invalidations > 0,
        "the re-point's epoch bump must invalidate cached verdicts ({stats:?})"
    );
    let deliveries = out.deliveries();
    for f in 0..flows {
        let n = deliveries.iter().filter(|(flow, _, _)| *flow == f).count() as u64;
        assert_eq!(n, 2 * phase_per_flow);
    }
}

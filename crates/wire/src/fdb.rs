//! The bridge's forwarding database.
//!
//! A Linux bridge forwards by destination MAC; on a static overlay the
//! daemon (e.g. flannel/Cilium's agent) programs the FDB instead of
//! flooding unknown unicast. This FDB is strict the same way: both the
//! source and destination MAC of an inner frame must be known, so a
//! corrupted inner Ethernet header — the one region no checksum covers —
//! is still caught at the bridge stage instead of delivering garbage.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{RwLock, RwLockReadGuard};

use falcon_packet::MacAddr;

use crate::FrameFactory;

/// MAC → bridge port, plus the strict membership check.
#[derive(Debug, Clone, Default)]
pub struct Fdb {
    ports: BTreeMap<[u8; 6], u16>,
}

impl Fdb {
    /// An FDB pre-programmed with both endpoint MACs of flows
    /// `0..flows`, as [`FrameFactory::inner_macs`] assigns them. The
    /// source side lands on port `2*flow`, the destination (veth) side
    /// on `2*flow + 1`.
    pub fn for_flows(factory: &FrameFactory, flows: u64) -> Fdb {
        let mut ports = BTreeMap::new();
        for flow in 0..flows {
            let (src, dst) = factory.inner_macs(flow);
            ports.insert(src.0, (2 * (flow as u16)) & 0x7FFF);
            ports.insert(dst.0, (2 * (flow as u16) + 1) & 0x7FFF);
        }
        Fdb { ports }
    }

    /// Looks up a MAC, returning its bridge port.
    pub fn lookup(&self, mac: MacAddr) -> Option<u16> {
        self.ports.get(&mac.0).copied()
    }

    /// Programs (or re-points) one MAC → port mapping.
    pub fn set(&mut self, mac: MacAddr, port: u16) {
        self.ports.insert(mac.0, port);
    }

    /// Unprograms one MAC, returning the port it pointed at.
    pub fn remove(&mut self, mac: MacAddr) -> Option<u16> {
        self.ports.remove(&mac.0)
    }

    /// Number of programmed entries.
    pub fn len(&self) -> usize {
        self.ports.len()
    }

    /// Whether the FDB is empty.
    pub fn is_empty(&self) -> bool {
        self.ports.is_empty()
    }
}

/// A mutable FDB shared between the control plane and the workers,
/// with an epoch counter the flow-verdict cache keys its invalidation
/// on.
///
/// Every mutation bumps the epoch *while holding the write lock*, so a
/// reader that takes the read lock and then reads the epoch sees an
/// epoch consistent with the table contents — a cached verdict stamped
/// with that epoch was proven against exactly that table. The
/// lock-free [`SharedFdb::epoch`] read used on cache lookups is
/// RCU-like: a packet racing a control-plane change may observe either
/// the old or the new state (exactly like a frame in flight during a
/// real `bridge fdb replace`), but an epoch observed after a change
/// can never validate a verdict proven before it.
#[derive(Debug, Default)]
pub struct SharedFdb {
    table: RwLock<Fdb>,
    epoch: AtomicU64,
}

impl SharedFdb {
    /// Wraps an initial table at epoch 0.
    pub fn new(fdb: Fdb) -> SharedFdb {
        SharedFdb {
            table: RwLock::new(fdb),
            epoch: AtomicU64::new(0),
        }
    }

    /// The current invalidation epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Read access for the slow path (and for verdict fills, which
    /// must read the epoch under the same guard via
    /// [`SharedFdb::epoch`] to stamp a consistent verdict).
    pub fn read(&self) -> RwLockReadGuard<'_, Fdb> {
        self.table.read().expect("fdb lock never poisoned")
    }

    /// Programs (or re-points) a MAC → port mapping, invalidating all
    /// cached verdicts by bumping the epoch.
    pub fn set(&self, mac: MacAddr, port: u16) {
        let mut g = self.table.write().expect("fdb lock never poisoned");
        g.set(mac, port);
        self.epoch.fetch_add(1, Ordering::Release);
    }

    /// Unprograms a MAC, invalidating all cached verdicts.
    pub fn remove(&self, mac: MacAddr) -> Option<u16> {
        let mut g = self.table.write().expect("fdb lock never poisoned");
        let prev = g.remove(mac);
        self.epoch.fetch_add(1, Ordering::Release);
        prev
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knows_both_ends_of_each_flow() {
        let f = FrameFactory::default();
        let fdb = Fdb::for_flows(&f, 4);
        assert_eq!(fdb.len(), 8);
        for flow in 0..4 {
            let (src, dst) = f.inner_macs(flow);
            assert!(fdb.lookup(src).is_some());
            assert!(fdb.lookup(dst).is_some());
            assert_ne!(fdb.lookup(src), fdb.lookup(dst));
        }
        assert_eq!(fdb.lookup(MacAddr::from_index(0xDEAD)), None);
    }

    #[test]
    fn set_and_remove_mutate_the_table() {
        let mut fdb = Fdb::default();
        let mac = MacAddr::from_index(5);
        assert_eq!(fdb.lookup(mac), None);
        fdb.set(mac, 9);
        assert_eq!(fdb.lookup(mac), Some(9));
        fdb.set(mac, 10);
        assert_eq!(fdb.lookup(mac), Some(10));
        assert_eq!(fdb.remove(mac), Some(10));
        assert_eq!(fdb.lookup(mac), None);
    }

    #[test]
    fn shared_fdb_bumps_epoch_on_every_mutation() {
        let f = FrameFactory::default();
        let shared = SharedFdb::new(Fdb::for_flows(&f, 2));
        assert_eq!(shared.epoch(), 0);
        let (_, dst) = f.inner_macs(0);
        shared.set(dst, 77);
        assert_eq!(shared.epoch(), 1);
        assert_eq!(shared.read().lookup(dst), Some(77));
        assert_eq!(shared.remove(dst), Some(77));
        assert_eq!(shared.epoch(), 2);
        assert_eq!(shared.read().lookup(dst), None);
    }
}

//! Windowed per-core load measurement.
//!
//! Falcon's dynamic balancing (paper §4.3, Algorithm 1) needs two load
//! signals: the system-wide average `L_avg` (gates Falcon on/off against
//! `FALCON_LOAD_THRESHOLD`) and per-core load (the two-choice check
//! `cpu.load < threshold`). The kernel prototype samples `/proc/stat`
//! every N timer interrupts from `do_timer`; the simulation does the
//! same — the netstack's timer tick calls [`LoadTracker::sample`] with
//! the ledger.
//!
//! Loads are exponentially smoothed. The paper observes that per-packet
//! load reading fluctuates wildly; the periodic, smoothed sample is
//! exactly the "not timely but stable" signal the two-choice design is
//! built around.

use falcon_metrics::CpuLedger;
use falcon_simcore::SimTime;

/// Smoothing factor for the exponentially weighted moving average:
/// `load = (1 - ALPHA) * load + ALPHA * instant`.
const ALPHA: f64 = 0.5;

/// Periodic per-core load sampler.
#[derive(Debug, Clone)]
pub struct LoadTracker {
    last_busy_ns: Vec<u64>,
    last_time: SimTime,
    loads: Vec<f64>,
    avg: f64,
    samples: u64,
}

impl LoadTracker {
    /// Creates a tracker for `n_cores` cores, with all loads at zero.
    pub fn new(n_cores: usize) -> Self {
        LoadTracker {
            last_busy_ns: vec![0; n_cores],
            last_time: SimTime::ZERO,
            loads: vec![0.0; n_cores],
            avg: 0.0,
            samples: 0,
        }
    }

    /// Takes a sample at `now` from the ledger's cumulative busy times.
    ///
    /// Call periodically (the timer tick). A zero-length window is
    /// ignored.
    pub fn sample(&mut self, now: SimTime, ledger: &CpuLedger) {
        let window = now.saturating_since(self.last_time).as_nanos();
        if window == 0 {
            return;
        }
        let mut sum = 0.0;
        for core in 0..self.loads.len() {
            let busy = ledger.core(core).busy_ns();
            let delta = busy.saturating_sub(self.last_busy_ns[core]);
            let instant = (delta as f64 / window as f64).min(1.0);
            self.loads[core] = (1.0 - ALPHA) * self.loads[core] + ALPHA * instant;
            self.last_busy_ns[core] = busy;
            sum += self.loads[core];
        }
        self.avg = if self.loads.is_empty() {
            0.0
        } else {
            sum / self.loads.len() as f64
        };
        self.last_time = now;
        self.samples += 1;
    }

    /// Smoothed load of one core, 0–1.
    pub fn core_load(&self, core: usize) -> f64 {
        self.loads[core]
    }

    /// Smoothed machine-wide average load, 0–1 (`L_avg` in Algorithm 1).
    pub fn avg_load(&self) -> f64 {
        self.avg
    }

    /// Number of samples taken.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// All per-core loads.
    pub fn loads(&self) -> &[f64] {
        &self.loads
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_metrics::Context;
    use falcon_simcore::SimDuration;

    #[test]
    fn converges_to_busy_fraction() {
        let mut ledger = CpuLedger::new(2);
        let mut tracker = LoadTracker::new(2);
        // Core 0 is 60% busy in every 1 ms window; core 1 idle.
        for tick in 1..=20u64 {
            ledger.charge(0, Context::SoftIrq, "f", SimDuration::from_micros(600));
            tracker.sample(SimTime::from_millis(tick), &ledger);
        }
        assert!(
            (tracker.core_load(0) - 0.6).abs() < 0.01,
            "load {}",
            tracker.core_load(0)
        );
        assert!(tracker.core_load(1) < 0.01);
        assert!((tracker.avg_load() - 0.3).abs() < 0.01);
        assert_eq!(tracker.samples(), 20);
    }

    #[test]
    fn smoothing_dampens_spikes() {
        let mut ledger = CpuLedger::new(1);
        let mut tracker = LoadTracker::new(1);
        // Ten idle windows...
        for tick in 1..=10u64 {
            tracker.sample(SimTime::from_millis(tick), &ledger);
        }
        // ...then one fully-busy window.
        ledger.charge(0, Context::SoftIrq, "f", SimDuration::from_millis(1));
        tracker.sample(SimTime::from_millis(11), &ledger);
        let after_spike = tracker.core_load(0);
        assert!(
            after_spike > 0.4 && after_spike < 0.6,
            "one spike gives ~ALPHA: {after_spike}"
        );
    }

    #[test]
    fn zero_window_ignored() {
        let ledger = CpuLedger::new(1);
        let mut tracker = LoadTracker::new(1);
        tracker.sample(SimTime::from_millis(1), &ledger);
        let before = tracker.samples();
        tracker.sample(SimTime::from_millis(1), &ledger);
        assert_eq!(tracker.samples(), before);
    }

    #[test]
    fn instant_load_clamped() {
        let mut ledger = CpuLedger::new(1);
        let mut tracker = LoadTracker::new(1);
        // Charge more busy time than the window (can happen when a long
        // unit is charged up-front at begin_work).
        ledger.charge(0, Context::Task, "f", SimDuration::from_millis(5));
        tracker.sample(SimTime::from_millis(1), &ledger);
        assert!(tracker.core_load(0) <= 1.0);
    }
}

//! The multi-queue physical NIC.
//!
//! On frame arrival the NIC computes the Toeplitz RSS hash over the
//! outer 5-tuple, picks a receive queue (`hash % n_queues` over the
//! indirection table, collapsed here to a modulo), DMAs the frame into
//! that queue's rx ring, and — NAPI-style — raises a hardirq on the
//! queue's affinity core only if the queue's NAPI is not already
//! scheduled. While the driver's poll loop is active, further arrivals
//! are absorbed silently by the ring (interrupt mitigation).

use falcon_khash::{toeplitz_hash, FlowKeys, MICROSOFT_RSS_KEY};
use falcon_packet::SkBuff;
use serde::{Deserialize, Serialize};

use crate::ring::RxRing;

/// Static NIC configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NicConfig {
    /// Number of hardware receive queues.
    pub n_queues: usize,
    /// Capacity of each rx ring, in packets.
    pub ring_size: usize,
    /// Affinity: which core services queue `i`'s IRQ.
    pub irq_affinity: Vec<usize>,
}

impl NicConfig {
    /// A single-queue NIC with its IRQ on core 0 — the paper's baseline
    /// configuration before RSS enters the picture.
    pub fn single_queue(ring_size: usize) -> Self {
        NicConfig {
            n_queues: 1,
            ring_size,
            irq_affinity: vec![0],
        }
    }

    /// A multi-queue NIC with queue `i`'s IRQ on core `i % n_cores`.
    pub fn multi_queue(n_queues: usize, ring_size: usize, n_cores: usize) -> Self {
        NicConfig {
            n_queues,
            ring_size,
            irq_affinity: (0..n_queues).map(|q| q % n_cores).collect(),
        }
    }
}

/// One hardware receive queue.
#[derive(Debug)]
pub struct NicQueue {
    /// The descriptor ring.
    pub ring: RxRing,
    /// NAPI scheduled state: while `true`, new arrivals do not raise
    /// hardirqs.
    pub napi_scheduled: bool,
}

/// A multi-queue physical NIC.
#[derive(Debug)]
pub struct PhysNic {
    config: NicConfig,
    queues: Vec<NicQueue>,
    hardirqs_raised: u64,
}

impl PhysNic {
    /// Creates a NIC from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the affinity table does not match the queue count.
    pub fn new(config: NicConfig) -> Self {
        assert_eq!(
            config.irq_affinity.len(),
            config.n_queues,
            "irq_affinity must list one core per queue"
        );
        let queues = (0..config.n_queues)
            .map(|_| NicQueue {
                ring: RxRing::new(config.ring_size),
                napi_scheduled: false,
            })
            .collect();
        PhysNic {
            config,
            queues,
            hardirqs_raised: 0,
        }
    }

    /// Number of receive queues.
    pub fn n_queues(&self) -> usize {
        self.queues.len()
    }

    /// RSS: picks the receive queue for a flow.
    pub fn select_queue(&self, keys: &FlowKeys) -> usize {
        if self.queues.len() == 1 {
            return 0;
        }
        let input = falcon_khash::toeplitz::rss_input_v4(
            keys.src_addr,
            keys.dst_addr,
            keys.src_port,
            keys.dst_port,
        );
        let hash = toeplitz_hash(&MICROSOFT_RSS_KEY, &input);
        hash as usize % self.queues.len()
    }

    /// Delivers an arriving frame into `queue`'s ring.
    ///
    /// Returns `(accepted, raise_irq_on)`: when the frame is accepted
    /// and the queue's NAPI was idle, the caller must fire a hardirq on
    /// the returned core and mark the poll loop running.
    pub fn receive(&mut self, queue: usize, skb: SkBuff) -> (bool, Option<usize>) {
        let q = &mut self.queues[queue];
        let accepted = q.ring.push(skb);
        if !accepted {
            return (false, None);
        }
        if q.napi_scheduled {
            (true, None)
        } else {
            q.napi_scheduled = true;
            self.hardirqs_raised += 1;
            (true, Some(self.config.irq_affinity[queue]))
        }
    }

    /// [`PhysNic::receive`] with tracepoints: emits `RingEnqueue` plus
    /// either `HardIrqRaise` or `IrqCoalesced` on accept, or a
    /// ring-overflow `QueueDrop` on reject (attributed to the queue's
    /// IRQ core, where the missing poll would have run).
    pub fn receive_traced(
        &mut self,
        queue: usize,
        skb: SkBuff,
        now_ns: u64,
        tracer: &mut falcon_trace::Tracer,
    ) -> (bool, Option<usize>) {
        if !tracer.is_enabled() {
            return self.receive(queue, skb);
        }
        let pkt = skb.id.0;
        let flow = skb.flow_id;
        let (accepted, irq) = self.receive(queue, skb);
        if !accepted {
            tracer.emit(
                now_ns,
                falcon_trace::EventKind::QueueDrop {
                    reason: falcon_trace::DropReason::Ring,
                    cpu: self.irq_core(queue),
                    pkt,
                    flow,
                },
            );
            return (accepted, irq);
        }
        tracer.emit(
            now_ns,
            falcon_trace::EventKind::RingEnqueue {
                queue,
                pkt,
                flow,
                qlen: self.ring_len(queue),
            },
        );
        match irq {
            Some(core) => tracer.emit(
                now_ns,
                falcon_trace::EventKind::HardIrqRaise { queue, core },
            ),
            None => tracer.emit(now_ns, falcon_trace::EventKind::IrqCoalesced { queue, pkt }),
        }
        (accepted, irq)
    }

    /// Takes one frame from `queue`'s ring.
    pub fn pop(&mut self, queue: usize) -> Option<SkBuff> {
        self.queues[queue].ring.pop()
    }

    /// Peeks at the oldest frame in `queue`'s ring (GRO looks ahead for
    /// coalescable segments).
    pub fn peek(&self, queue: usize) -> Option<&SkBuff> {
        self.queues[queue].ring.front()
    }

    /// Takes up to `budget` frames from `queue`'s ring (the driver poll).
    pub fn poll(&mut self, queue: usize, budget: usize) -> Vec<SkBuff> {
        let q = &mut self.queues[queue];
        let mut out = Vec::new();
        while out.len() < budget {
            match q.ring.pop() {
                Some(skb) => out.push(skb),
                None => break,
            }
        }
        out
    }

    /// Packets waiting in `queue`'s ring.
    pub fn ring_len(&self, queue: usize) -> usize {
        self.queues[queue].ring.len()
    }

    /// Completes NAPI on `queue`: re-enables its interrupt.
    pub fn napi_complete(&mut self, queue: usize) {
        self.queues[queue].napi_scheduled = false;
    }

    /// Whether `queue`'s poll loop is marked running.
    pub fn is_napi_scheduled(&self, queue: usize) -> bool {
        self.queues[queue].napi_scheduled
    }

    /// IRQ affinity core of `queue`.
    pub fn irq_core(&self, queue: usize) -> usize {
        self.config.irq_affinity[queue]
    }

    /// Total frames dropped across all rings.
    pub fn total_dropped(&self) -> u64 {
        self.queues.iter().map(|q| q.ring.dropped()).sum()
    }

    /// Total hardirqs raised.
    pub fn hardirqs_raised(&self) -> u64 {
        self.hardirqs_raised
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_packet::PacketId;

    fn skb(id: u64) -> SkBuff {
        SkBuff::new(PacketId(id), vec![0u8; 60])
    }

    #[test]
    fn single_queue_always_zero() {
        let nic = PhysNic::new(NicConfig::single_queue(64));
        let keys = FlowKeys::udp(1, 2, 3, 4);
        assert_eq!(nic.select_queue(&keys), 0);
    }

    #[test]
    fn rss_spreads_flows_but_is_per_flow_stable() {
        let nic = PhysNic::new(NicConfig::multi_queue(8, 64, 8));
        let a = FlowKeys::udp(0x0A00_0001, 1111, 0x0A00_0002, 5001);
        let qa = nic.select_queue(&a);
        assert_eq!(nic.select_queue(&a), qa, "same flow, same queue");
        // Across many flows, more than one queue must be used.
        let mut used = std::collections::HashSet::new();
        for port in 0..64u16 {
            let k = FlowKeys::udp(0x0A00_0001, 10_000 + port, 0x0A00_0002, 5001);
            used.insert(nic.select_queue(&k));
        }
        assert!(used.len() > 3, "RSS used only {} queues", used.len());
    }

    #[test]
    fn interrupt_mitigation() {
        let mut nic = PhysNic::new(NicConfig::single_queue(64));
        let (ok, irq) = nic.receive(0, skb(0));
        assert!(ok);
        assert_eq!(irq, Some(0), "first frame raises the IRQ");
        let (ok, irq) = nic.receive(0, skb(1));
        assert!(ok);
        assert_eq!(irq, None, "poll loop already running");
        assert_eq!(nic.hardirqs_raised(), 1);

        let polled = nic.poll(0, 64);
        assert_eq!(polled.len(), 2);
        nic.napi_complete(0);
        let (_, irq) = nic.receive(0, skb(2));
        assert_eq!(irq, Some(0), "after napi_complete IRQs fire again");
    }

    #[test]
    fn traced_receive_reports_irq_coalescing_and_drops() {
        let mut nic = PhysNic::new(NicConfig::single_queue(2));
        let mut tracer = falcon_trace::Tracer::new(16);
        nic.receive_traced(0, skb(0), 10, &mut tracer);
        nic.receive_traced(0, skb(1), 20, &mut tracer);
        nic.receive_traced(0, skb(2), 30, &mut tracer); // overflow
        let kinds: Vec<_> = tracer.events().iter().map(|e| e.kind).collect();
        assert!(matches!(
            kinds[0],
            falcon_trace::EventKind::RingEnqueue {
                queue: 0,
                pkt: 0,
                qlen: 1,
                ..
            }
        ));
        assert!(matches!(
            kinds[1],
            falcon_trace::EventKind::HardIrqRaise { queue: 0, core: 0 }
        ));
        assert!(matches!(
            kinds[3],
            falcon_trace::EventKind::IrqCoalesced { queue: 0, pkt: 1 }
        ));
        assert!(matches!(
            kinds[4],
            falcon_trace::EventKind::QueueDrop {
                reason: falcon_trace::DropReason::Ring,
                pkt: 2,
                ..
            }
        ));
        assert_eq!(nic.total_dropped(), 1);
    }

    #[test]
    fn poll_respects_budget() {
        let mut nic = PhysNic::new(NicConfig::single_queue(64));
        for i in 0..10 {
            nic.receive(0, skb(i));
        }
        assert_eq!(nic.poll(0, 4).len(), 4);
        assert_eq!(nic.ring_len(0), 6);
        assert_eq!(nic.poll(0, 64).len(), 6);
        assert!(nic.poll(0, 64).is_empty());
    }

    #[test]
    fn ring_overflow_drops() {
        let mut nic = PhysNic::new(NicConfig::single_queue(2));
        assert!(nic.receive(0, skb(0)).0);
        assert!(nic.receive(0, skb(1)).0);
        let (ok, irq) = nic.receive(0, skb(2));
        assert!(!ok && irq.is_none());
        assert_eq!(nic.total_dropped(), 1);
    }

    #[test]
    fn affinity_routing() {
        let nic = PhysNic::new(NicConfig::multi_queue(4, 64, 2));
        assert_eq!(nic.irq_core(0), 0);
        assert_eq!(nic.irq_core(1), 1);
        assert_eq!(nic.irq_core(2), 0);
        assert_eq!(nic.irq_core(3), 1);
    }

    #[test]
    #[should_panic(expected = "one core per queue")]
    fn bad_affinity_panics() {
        let _ = PhysNic::new(NicConfig {
            n_queues: 2,
            ring_size: 4,
            irq_affinity: vec![0],
        });
    }
}

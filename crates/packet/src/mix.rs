//! An 8-byte-chunk mixing hash for the wire hot path.
//!
//! Replaces byte-at-a-time FNV-1a in the two places the dataplane
//! hashes payload-sized byte runs per packet: the delivery digest and
//! the flow-verdict cache key. The walk consumes one 64-bit lane per
//! iteration (multiply-xorshift mix per lane, length seeded up front so
//! zero-padding the tail cannot alias a longer input, strong final
//! avalanche), which is ~8x fewer loop iterations than FNV over an MTU
//! frame while keeping the bit-dispersion properties the corruption
//! oracles rely on.
//!
//! [`mix64_scalar`] assembles each lane byte-by-byte and must produce
//! *identical* output — it is the differential reference the property
//! tests pin the chunked walk against.

/// Multiplier for the per-lane mix (the 64-bit golden-ratio constant).
const M: u64 = 0x9E37_79B9_7F4A_7C15;
/// Multiplier for the final avalanche (from splitmix64).
const A: u64 = 0xD6E8_FEB8_6659_FD93;

#[inline]
fn mix_lane(h: u64, v: u64) -> u64 {
    let h = (h ^ v).wrapping_mul(M);
    h ^ (h >> 29)
}

#[inline]
fn avalanche(mut h: u64) -> u64 {
    h ^= h >> 32;
    h = h.wrapping_mul(A);
    h ^ (h >> 32)
}

/// Hashes `data` 8 bytes per iteration, seeded with `seed`.
pub fn mix64(seed: u64, data: &[u8]) -> u64 {
    let mut h = seed ^ (data.len() as u64).wrapping_mul(M);
    let mut chunks = data.chunks_exact(8);
    for chunk in &mut chunks {
        let v = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        h = mix_lane(h, v);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix_lane(h, u64::from_le_bytes(tail));
    }
    avalanche(h)
}

/// Byte-at-a-time reference implementation of [`mix64`]: assembles the
/// same little-endian lanes one byte at a time. Output is identical by
/// construction; the proptests assert it stays that way.
pub fn mix64_scalar(seed: u64, data: &[u8]) -> u64 {
    let mut h = seed ^ (data.len() as u64).wrapping_mul(M);
    let mut i = 0;
    while i < data.len() {
        let mut v = 0u64;
        let end = (i + 8).min(data.len());
        for (shift, &b) in data[i..end].iter().enumerate() {
            v |= (b as u64) << (8 * shift);
        }
        h = mix_lane(h, v);
        i = end;
    }
    avalanche(h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunked_equals_scalar_reference() {
        let mut data = vec![0u8; 2048 + 7];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i as u8).wrapping_mul(73).wrapping_add(5);
        }
        for start in 0..8 {
            for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 63, 64, 65, 1499, 1500, 2048] {
                let slice = &data[start..start + len];
                for seed in [0u64, 0xDEAD_BEEF, u64::MAX] {
                    assert_eq!(
                        mix64(seed, slice),
                        mix64_scalar(seed, slice),
                        "start={start} len={len} seed={seed:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn length_is_part_of_the_hash() {
        // The tail is zero-padded, so the length seed is what keeps a
        // trailing zero byte from aliasing the shorter input.
        assert_ne!(mix64(0, b""), mix64(0, b"\0"));
        assert_ne!(mix64(0, b"abc"), mix64(0, b"abc\0"));
        assert_ne!(mix64(0, &[0u8; 8]), mix64(0, &[0u8; 16]));
    }

    #[test]
    fn single_bit_flips_change_the_hash() {
        let base: Vec<u8> = (0..256u32).map(|i| (i * 31 + 7) as u8).collect();
        let h0 = mix64(7, &base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(h0, mix64(7, &flipped), "flip at byte {byte} bit {bit}");
            }
        }
    }

    #[test]
    fn seed_separates_streams() {
        assert_ne!(mix64(1, b"payload"), mix64(2, b"payload"));
    }
}

//! End-to-end simulation throughput: how many simulated packets per
//! wall-clock second the engine sustains in each network configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use falcon_bench::measure_single_flow_udp;
use falcon_experiments::scenario::{Mode, Scenario};

fn bench_sim_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    g.warm_up_time(std::time::Duration::from_millis(500));
    g.measurement_time(std::time::Duration::from_secs(3));
    g.bench_function("host_udp_100kpps_window", |b| {
        b.iter(|| measure_single_flow_udp(Mode::Host, 100_000.0, 16))
    });
    g.bench_function("overlay_udp_100kpps_window", |b| {
        b.iter(|| measure_single_flow_udp(Mode::Vanilla, 100_000.0, 16))
    });
    g.bench_function("falcon_udp_100kpps_window", |b| {
        b.iter(|| measure_single_flow_udp(Mode::Falcon(Scenario::sf_falcon()), 100_000.0, 16))
    });
    g.finish();
}

criterion_group!(benches, bench_sim_throughput);
criterion_main!(benches);

//! Simulated time: nanosecond-resolution instants and durations.
//!
//! The simulator models CPU work in the hundreds-of-nanoseconds range
//! (one kernel function call) up to multi-second experiment windows, so
//! a `u64` nanosecond count covers every need with headroom (~584 years).

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// An instant in simulated time, measured in nanoseconds from the start
/// of the simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant. Used as an "infinitely far in
    /// the future" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after the epoch.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Returns the number of whole nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the time since the epoch as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`, saturating to zero
    /// if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Returns the instant `d` after `self`, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a duration of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a duration of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a duration of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, rounding to the
    /// nearest nanosecond and saturating on overflow or negative input.
    pub fn from_secs_f64(secs: f64) -> Self {
        if !secs.is_finite() || secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let nanos = secs * 1e9;
        if nanos >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(nanos.round() as u64)
        }
    }

    /// Returns the number of whole nanoseconds in the duration.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the number of whole microseconds in the duration.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional microseconds.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating duration addition.
    pub fn saturating_add(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Saturating duration subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative float, rounding to the
    /// nearest nanosecond.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimDuration::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_millis(7).as_nanos(), 7_000_000);
        assert_eq!(SimDuration::from_secs(7).as_nanos(), 7_000_000_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_micros(10);
        let d = SimDuration::from_micros(4);
        assert_eq!((t + d).as_nanos(), 14_000);
        assert_eq!((t - d).as_nanos(), 6_000);
        assert_eq!(((t + d) - t).as_nanos(), d.as_nanos());
        assert_eq!((d * 3).as_nanos(), 12_000);
        assert_eq!((d / 2).as_nanos(), 2_000);
    }

    #[test]
    fn saturating_ops() {
        let early = SimTime::from_nanos(5);
        let late = SimTime::from_nanos(9);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early).as_nanos(), 4);
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_secs(1)),
            SimTime::MAX
        );
        assert_eq!(
            SimDuration::from_nanos(3).saturating_sub(SimDuration::from_nanos(9)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn float_conversions() {
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimDuration::from_secs_f64(-2.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::ZERO);
        assert!((SimDuration::from_micros(1500).as_secs_f64() - 0.0015).abs() < 1e-12);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_nanos(12_500).to_string(), "12.500us");
        assert_eq!(SimDuration::from_nanos(12_500_000).to_string(), "12.500ms");
        assert_eq!(SimDuration::from_nanos(2_500_000_000).to_string(), "2.500s");
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_nanos(1000);
        assert_eq!(d.mul_f64(1.5).as_nanos(), 1500);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = [1u64, 2, 3]
            .iter()
            .map(|&n| SimDuration::from_nanos(n))
            .sum();
        assert_eq!(total.as_nanos(), 6);
    }
}

//! Property-based equivalence of the vectorized byte loops against
//! their scalar references.
//!
//! The folded [`sum_words`] and chunked [`mix64`] are the wire hot
//! path; the two-bytes-at-a-time [`sum_words_scalar`] and
//! byte-at-a-time [`mix64_scalar`] are the auditable specs. The
//! contract differs per loop: the checksum paths are *fold-equivalent*
//! (the raw accumulators may differ, the folded 16-bit value may not),
//! while the digest paths must agree bit-for-bit. Both are exercised
//! across every length up to MTU, odd tails, unaligned slice starts,
//! and carried-in accumulators, plus the RFC 768 rule that a UDP
//! checksum computing to zero transmits as `0xFFFF`.
//!
//! [`sum_words`]: falcon_packet::checksum::sum_words
//! [`sum_words_scalar`]: falcon_packet::checksum::sum_words_scalar
//! [`mix64`]: falcon_packet::mix64
//! [`mix64_scalar`]: falcon_packet::mix64_scalar

use falcon_packet::checksum::{fold, internet_checksum, sum_words, sum_words_scalar, verify};
use falcon_packet::{mix64, mix64_scalar};
use proptest::prelude::*;

/// Standard MTU: the longest contiguous run either loop sees per call.
const MTU: usize = 1500;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Fold-equivalence over every length 0..=MTU (odd tails included
    /// by construction) with a carried-in accumulator, the exact
    /// multi-part shape `fill_l4_checksum` uses (pseudo-header sum
    /// carried into the payload walk).
    #[test]
    fn checksum_paths_are_fold_equivalent(
        data in proptest::collection::vec(any::<u8>(), 0..=MTU),
        acc in 0u32..=0x0003_FFFF,
    ) {
        prop_assert_eq!(
            fold(sum_words(&data, acc)),
            fold(sum_words_scalar(&data, acc)),
        );
    }

    /// Unaligned starts: the vector path must not assume its slice
    /// begins on any particular boundary. Slicing a shared buffer at
    /// offsets 0..16 covers every 16-byte phase the SSE path can see.
    #[test]
    fn checksum_fold_equivalence_survives_unaligned_starts(
        data in proptest::collection::vec(any::<u8>(), 16..=MTU),
        off in 0usize..16,
        acc in 0u32..=0xFFFF,
    ) {
        let slice = &data[off..];
        prop_assert_eq!(
            fold(sum_words(slice, acc)),
            fold(sum_words_scalar(slice, acc)),
        );
    }

    /// RFC 768: a transmitted UDP checksum of zero means "absent", so
    /// a *computed* `0x0000` is transmitted as `0xFFFF` — both sums
    /// must agree on when that substitution fires, and the substituted
    /// value must still verify (a ones'-complement sum of `0xFFFF`).
    #[test]
    fn rfc768_zero_checksum_rule_agrees_across_paths(
        data in proptest::collection::vec(any::<u8>(), 8..=MTU),
    ) {
        // Build a pseudo-UDP buffer with a zeroed checksum field at
        // offset 6 (the UDP layout), then fill it the RFC 768 way.
        let mut frame = data.clone();
        frame[6] = 0;
        frame[7] = 0;
        let csum_vec = match !fold(sum_words(&frame, 0)) {
            0 => 0xFFFF,
            c => c,
        };
        let csum_scalar = match !fold(sum_words_scalar(&frame, 0)) {
            0 => 0xFFFF,
            c => c,
        };
        prop_assert_eq!(csum_vec, csum_scalar);
        frame[6..8].copy_from_slice(&csum_vec.to_be_bytes());
        prop_assert!(verify(&frame), "filled checksum must verify");
        prop_assert_eq!(internet_checksum(&frame), 0);
    }

    /// The digest paths are bit-identical: same seed, same bytes, same
    /// 64-bit output, over every length and an unaligned start.
    #[test]
    fn mix64_matches_scalar_reference(
        data in proptest::collection::vec(any::<u8>(), 0..=MTU),
        seed in any::<u64>(),
        off in 0usize..8,
    ) {
        let slice = if data.len() >= off { &data[off..] } else { &data[..] };
        prop_assert_eq!(mix64(seed, slice), mix64_scalar(seed, slice));
    }
}

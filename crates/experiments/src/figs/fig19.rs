//! Figure 19: Falcon's overhead.
//!
//! Total CPU usage at fixed packet rates for host / vanilla overlay /
//! Falcon, plus softirq counts. Expected shape: Falcon costs about the
//! same CPU as the vanilla overlay at low rates and ≤ ~10 % more at
//! high rates, while raising substantially more (smaller) softirqs.

use falcon_metrics::IrqKind;
use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

use crate::measure::{run_measured, RunStats, Scale};
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{FigResult, Table};

fn run_case(mode: Mode, rate: f64, scale: Scale) -> RunStats {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = UdpStressConfig::single_flow(16);
    cfg.senders_per_flow = 2;
    // Pacing is per sender thread: split the aggregate rate.
    cfg.pacing = Pacing::FixedPps(rate / 2.0);
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    run_measured(&mut runner, scale)
}

/// CPU usage and softirq counts across fixed packet rates.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new("fig19", "Falcon overhead: CPU at fixed packet rates");
    // Rates stay below the vanilla overlay's single-flow capacity
    // (~360 kpps here) so all three configurations face the same
    // delivered load — the paper's fig19 likewise uses "a less loaded
    // case (400 Kpps)" on its faster testbed.
    let rates: &[f64] = match scale {
        Scale::Quick => &[100_000.0, 300_000.0],
        Scale::Full => &[100_000.0, 200_000.0, 300_000.0, 340_000.0],
    };

    let mut a = Table::new(&[
        "rate Kpps",
        "Host cores",
        "Con cores",
        "Falcon cores",
        "Falcon/Con",
    ]);
    let mut b = Table::new(&["rate Kpps", "Con NET_RX/s", "Falcon NET_RX/s", "increase"]);
    for &rate in rates {
        let host = run_case(Mode::Host, rate, scale);
        let con = run_case(Mode::Vanilla, rate, scale);
        let fal = run_case(Mode::Falcon(Scenario::sf_falcon()), rate, scale);
        a.row(vec![
            format!("{:.0}", rate / 1e3),
            format!("{:.2}", host.total_busy_cores()),
            format!("{:.2}", con.total_busy_cores()),
            format!("{:.2}", fal.total_busy_cores()),
            format!(
                "{:.2}",
                fal.total_busy_cores() / con.total_busy_cores().max(1e-9)
            ),
        ]);
        let secs = con.window.as_secs_f64();
        let con_rx = con.irq(IrqKind::NetRx) as f64 / secs;
        let fal_rx = fal.irq(IrqKind::NetRx) as f64 / secs;
        b.row(vec![
            format!("{:.0}", rate / 1e3),
            format!("{con_rx:.0}"),
            format!("{fal_rx:.0}"),
            format!("{:+.1}%", (fal_rx / con_rx.max(1.0) - 1.0) * 100.0),
        ]);
    }
    fig.panel("(a) total CPU (core-equivalents busy)", a);
    fig.panel("(b) NET_RX softirq rate", b);
    fig.note("Falcon triggers more, smaller softirqs at bounded extra CPU (paper: +44.6% softirqs, <=10% CPU)");
    fig
}

//! Figure 11: per-core CPU breakdown for a 16 B single-flow UDP stress.
//!
//! Expected shape: vanilla Linux uses at most three cores (hardirq +
//! first softirq; the serialized remaining softirqs; the application),
//! with the middle core overloaded. Falcon adds two more softirq cores
//! and shifts the bottleneck to user-space receive.

use falcon_netdev::LinkSpeed;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

use crate::figs::fig02::single_flow_plateau;
use crate::measure::{run_measured, Scale};
use crate::scenario::{Mode, Scenario, SF_APP_CORE};
use crate::table::{pct, FigResult, Table};

fn breakdown(mode: Mode, scale: Scale) -> Table {
    // Drive each configuration at 95% of its own sustainable rate, the
    // stress test's operating point.
    let plateau = single_flow_plateau(mode.clone(), LinkSpeed::HundredGbit, 16, scale);
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = UdpStressConfig::single_flow(16);
    cfg.senders_per_flow = 4;
    cfg.pacing = Pacing::FixedPps(plateau * 0.95 / 4.0);
    cfg.app_cores = vec![SF_APP_CORE];
    let mut runner = scenario.build(Box::new(UdpStressApp::new(cfg)));
    let stats = run_measured(&mut runner, scale);
    let mut t = Table::new(&["core", "hardirq", "softirq", "task", "busy"]);
    for (core, share) in stats.cores.iter().enumerate() {
        if share.busy() < 0.02 {
            continue;
        }
        t.row(vec![
            core.to_string(),
            pct(share.hardirq),
            pct(share.softirq),
            pct(share.task),
            pct(share.busy()),
        ]);
    }
    t
}

/// Per-core context breakdown for the three configurations.
pub fn run(scale: Scale) -> FigResult {
    let mut fig = FigResult::new(
        "fig11",
        "CPU utilization of a single 16B UDP flow (per core, by context)",
    );
    fig.panel("Host", breakdown(Mode::Host, scale));
    fig.panel("Con", breakdown(Mode::Vanilla, scale));
    fig.panel(
        "Falcon",
        breakdown(Mode::Falcon(Scenario::sf_falcon()), scale),
    );
    fig.note("Falcon spreads the overlay's serialized softirqs over the FALCON_CPUS set");
    fig
}

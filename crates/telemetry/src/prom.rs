//! Prometheus text exposition (format 0.0.4) over a tiny blocking TCP
//! listener, plus a curl-less scrape client and exposition parser so
//! CI can verify a live scrape without external tooling.
//!
//! The listener is deliberately minimal: accept, read the request
//! head, write the latest pre-rendered exposition, close. It runs on
//! its own thread with a non-blocking accept loop so shutdown never
//! hangs on a missing final connection.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use falcon_trace::DropReason;

use crate::shard::WorkerSample;

/// Renders the cumulative state of all workers as one exposition body.
pub fn render(t_ns: u64, workers: &[WorkerSample], stages: &[String]) -> String {
    let mut out = String::with_capacity(4096);
    let mut counter = |name: &str, help: &str, lines: &[(String, String)]| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
        for (labels, value) in lines {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    };

    let per_worker = |f: &dyn Fn(usize, &WorkerSample) -> u64| -> Vec<(String, String)> {
        workers
            .iter()
            .enumerate()
            .map(|(w, s)| (format!("worker=\"{w}\""), f(w, s).to_string()))
            .collect()
    };
    counter(
        "falcon_worker_sweeps_total",
        "Worker loop iterations that found work.",
        &per_worker(&|_, s| s.counters.sweeps),
    );
    counter(
        "falcon_worker_delivered_total",
        "Packets delivered to the app endpoint.",
        &per_worker(&|_, s| s.counters.delivered),
    );
    counter(
        "falcon_worker_bytes_delivered_total",
        "Application payload bytes delivered (wire mode).",
        &per_worker(&|_, s| s.counters.bytes_delivered),
    );
    counter(
        "falcon_worker_steer_decisions_total",
        "Steering decisions taken.",
        &per_worker(&|_, s| s.counters.decisions),
    );
    counter(
        "falcon_worker_steer_second_choices_total",
        "Two-choice rehash wins.",
        &per_worker(&|_, s| s.counters.second_choices),
    );
    counter(
        "falcon_worker_migrations_total",
        "(flow, stage) migrations caused by this worker's decisions.",
        &per_worker(&|_, s| s.counters.migrations),
    );
    counter(
        "falcon_worker_flow_cache_hits_total",
        "Flow-verdict cache consults that returned a fresh verdict.",
        &per_worker(&|_, s| s.counters.flow_cache_hits),
    );
    counter(
        "falcon_worker_flow_cache_misses_total",
        "Flow-verdict cache consults that took the slow path (stale finds included).",
        &per_worker(&|_, s| s.counters.flow_cache_misses),
    );
    counter(
        "falcon_worker_flow_cache_evictions_total",
        "Flow-verdict cache entries replaced to make room.",
        &per_worker(&|_, s| s.counters.flow_cache_evictions),
    );
    counter(
        "falcon_worker_flow_cache_invalidations_total",
        "Flow-verdict cache entries dropped by FDB epoch bumps.",
        &per_worker(&|_, s| s.counters.flow_cache_invalidations),
    );
    counter(
        "falcon_worker_conntrack_updates_total",
        "Conntrack observations absorbed by this worker's SCR shard.",
        &per_worker(&|_, s| s.counters.conntrack_updates),
    );
    counter(
        "falcon_worker_conntrack_transitions_total",
        "Conntrack observations that moved a connection's state machine.",
        &per_worker(&|_, s| s.counters.conntrack_transitions),
    );
    counter(
        "falcon_worker_scr_delta_records_total",
        "Compact state-delta records appended for the SCR merge.",
        &per_worker(&|_, s| s.counters.scr_delta_records),
    );

    let mut drop_lines = Vec::new();
    for (w, s) in workers.iter().enumerate() {
        for r in DropReason::ALL {
            drop_lines.push((
                format!("worker=\"{w}\",reason=\"{}\"", r.label()),
                s.counters
                    .drops
                    .get(r.index())
                    .copied()
                    .unwrap_or(0)
                    .to_string(),
            ));
        }
    }
    counter(
        "falcon_worker_drops_total",
        "Packets dropped, by reason.",
        &drop_lines,
    );

    let per_stage = |pick: &dyn Fn(&WorkerSample) -> &[u64]| -> Vec<(String, String)> {
        let mut lines = Vec::new();
        for (w, s) in workers.iter().enumerate() {
            for (i, v) in pick(s).iter().enumerate() {
                let stage = stages.get(i).map(String::as_str).unwrap_or("?");
                lines.push((format!("worker=\"{w}\",stage=\"{stage}\""), v.to_string()));
            }
        }
        lines
    };
    counter(
        "falcon_worker_processed_total",
        "Stage executions, per pipeline stage.",
        &per_stage(&|s| &s.counters.processed_per_stage),
    );
    counter(
        "falcon_worker_malformed_total",
        "Frames rejected by byte-level verification, per stage.",
        &per_stage(&|s| &s.counters.malformed_per_stage),
    );
    counter(
        "falcon_worker_stage_bytes_total",
        "Wire bytes touched per stage (wire mode).",
        &per_stage(&|s| &s.counters.bytes_per_stage),
    );

    let mut stall_lines = Vec::new();
    for (w, s) in workers.iter().enumerate() {
        for (bucket, v) in [
            ("busy", s.stall.busy_ns),
            ("push", s.stall.stall_push_ns),
            ("pop", s.stall.stall_pop_ns),
            ("guard", s.stall.guard_wait_ns),
            ("idle", s.stall.idle_ns),
        ] {
            stall_lines.push((format!("worker=\"{w}\",bucket=\"{bucket}\""), v.to_string()));
        }
    }
    counter(
        "falcon_worker_stall_ns_total",
        "Stall attribution: where each worker's wall-clock went.",
        &stall_lines,
    );
    counter(
        "falcon_worker_wall_ns_total",
        "Total measured wall-clock of the worker loop.",
        &per_worker(&|_, s| s.stall.wall_ns),
    );

    let mut gauge = |name: &str, help: &str, lines: &[(String, String)]| {
        out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
        for (labels, value) in lines {
            out.push_str(&format!("{name}{{{labels}}} {value}\n"));
        }
    };
    gauge(
        "falcon_worker_ring_depth",
        "Depth-gauge reading at the last publish.",
        &workers
            .iter()
            .enumerate()
            .map(|(w, s)| (format!("worker=\"{w}\""), s.ring_depth.to_string()))
            .collect::<Vec<_>>(),
    );
    gauge(
        "falcon_worker_depth_staleness",
        "Largest depth-gauge staleness observed (bound: one NAPI budget).",
        &workers
            .iter()
            .enumerate()
            .map(|(w, s)| (format!("worker=\"{w}\""), s.depth_staleness.to_string()))
            .collect::<Vec<_>>(),
    );
    gauge(
        "falcon_telemetry_sample_timestamp_ns",
        "Run-relative timestamp of this snapshot.",
        &[(String::from("source=\"sampler\""), t_ns.to_string())],
    );

    out.push_str(
        "# HELP falcon_stage_service_ns Per-stage service time summary.\n# TYPE falcon_stage_service_ns summary\n",
    );
    for (w, s) in workers.iter().enumerate() {
        for (i, h) in s.stage_service_ns.iter().enumerate() {
            let stage = stages.get(i).map(String::as_str).unwrap_or("?");
            for q in [50.0, 90.0, 99.0] {
                out.push_str(&format!(
                    "falcon_stage_service_ns{{worker=\"{w}\",stage=\"{stage}\",quantile=\"{}\"}} {}\n",
                    q / 100.0,
                    h.percentile(q)
                ));
            }
            out.push_str(&format!(
                "falcon_stage_service_ns_sum{{worker=\"{w}\",stage=\"{stage}\"}} {}\n",
                h.mean() * h.count() as f64
            ));
            out.push_str(&format!(
                "falcon_stage_service_ns_count{{worker=\"{w}\",stage=\"{stage}\"}} {}\n",
                h.count()
            ));
        }
    }
    out
}

/// Renders the socket rx thread's counters as an exposition fragment,
/// appended to [`render`]'s body on ingestion runs.
pub fn render_rx(rx: &crate::rx::RxSample) -> String {
    let mut out = String::with_capacity(512);
    for (name, help, value) in [
        (
            "falcon_rx_datagrams_total",
            "Datagrams read off the ingest socket.",
            rx.datagrams,
        ),
        (
            "falcon_rx_batches_total",
            "Batched reads that returned at least one datagram.",
            rx.batches,
        ),
        (
            "falcon_rx_eagain_spins_total",
            "Empty reads (EAGAIN) the rx thread spun through.",
            rx.eagain_spins,
        ),
        (
            "falcon_rx_runts_total",
            "Datagrams rejected at the rx boundary as too short.",
            rx.runts,
        ),
    ] {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    }
    out.push_str(&format!(
        "# HELP falcon_rx_sock_drops Kernel receive-queue overflow estimate (SO_RXQ_OVFL).\n\
         # TYPE falcon_rx_sock_drops gauge\nfalcon_rx_sock_drops {}\n",
        rx.sock_drops
    ));
    out
}

/// Renders the packet source's slab-pool counters as an exposition
/// fragment, appended to [`render`]'s body on slab-backed runs.
pub fn render_slab(slab: &falcon_packet::SlabSample) -> String {
    let mut out = String::with_capacity(768);
    for (name, help, value) in [
        (
            "falcon_slab_leases_total",
            "Segments leased from a slab-pool freelist.",
            slab.leases,
        ),
        (
            "falcon_slab_recycles_total",
            "Slots drained from the return rings back into a freelist.",
            slab.recycles,
        ),
        (
            "falcon_slab_returns_total",
            "Cross-thread pushes into the slab return rings.",
            slab.returns,
        ),
        (
            "falcon_slab_fallbacks_total",
            "Heap-fallback segments handed out because the pool was dry.",
            slab.fallbacks,
        ),
        (
            "falcon_slab_ring_drops_total",
            "Returns lost to a full return ring (buffer freed).",
            slab.ring_drops,
        ),
        (
            "falcon_slab_gen_errors_total",
            "Returned slots discarded on a generation-tag mismatch.",
            slab.gen_errors,
        ),
    ] {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    }
    out
}

/// One parsed exposition sample.
#[derive(Debug, Clone, PartialEq)]
pub struct PromMetric {
    /// Metric name (before the label braces).
    pub name: String,
    /// Label key/value pairs in exposition order.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

impl PromMetric {
    /// Looks up one label's value.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses text exposition format 0.0.4 (the subset [`render`] emits):
/// `name{k="v",...} value` lines, skipping comments and blanks.
pub fn parse_exposition(text: &str) -> Vec<PromMetric> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (head, value) = match line.rsplit_once(' ') {
            Some(parts) => parts,
            None => continue,
        };
        let value: f64 = match value.parse() {
            Ok(v) => v,
            Err(_) => continue,
        };
        let (name, labels) = match head.split_once('{') {
            Some((name, rest)) => {
                let body = rest.strip_suffix('}').unwrap_or(rest);
                let labels = body
                    .split(',')
                    .filter_map(|pair| {
                        let (k, v) = pair.split_once('=')?;
                        Some((k.trim().to_string(), v.trim().trim_matches('"').to_string()))
                    })
                    .collect();
                (name.to_string(), labels)
            }
            None => (head.to_string(), Vec::new()),
        };
        out.push(PromMetric {
            name,
            labels,
            value,
        });
    }
    out
}

/// The blocking exposition listener. Serves whatever body was last
/// [`PromServer::publish`]ed to every connection.
pub struct PromServer {
    addr: SocketAddr,
    latest: Arc<Mutex<String>>,
    scrapes: Arc<AtomicU64>,
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl PromServer {
    /// Binds `addr` (e.g. `127.0.0.1:9464`, or port 0 for ephemeral)
    /// and starts the accept loop.
    pub fn bind(addr: &str) -> std::io::Result<PromServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let latest = Arc::new(Mutex::new(String::from(
            "# falcon telemetry: no sample published yet\n",
        )));
        let scrapes = Arc::new(AtomicU64::new(0));
        let stop = Arc::new(AtomicBool::new(false));
        let handle = {
            let latest = Arc::clone(&latest);
            let scrapes = Arc::clone(&scrapes);
            let stop = Arc::clone(&stop);
            std::thread::Builder::new()
                .name("falcon-prom".into())
                .spawn(move || loop {
                    match listener.accept() {
                        Ok((mut stream, _)) => {
                            let body = latest.lock().map(|g| g.clone()).unwrap_or_default();
                            if serve_one(&mut stream, &body).is_ok() {
                                scrapes.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Err(_) => {
                            if stop.load(Ordering::Acquire) {
                                break;
                            }
                            std::thread::sleep(Duration::from_millis(2));
                        }
                    }
                })?
        };
        Ok(PromServer {
            addr: local,
            latest,
            scrapes,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Replaces the exposition body served to the next scrape.
    pub fn publish(&self, body: String) {
        if let Ok(mut g) = self.latest.lock() {
            *g = body;
        }
    }

    /// Scrapes served so far.
    pub fn scrapes(&self) -> u64 {
        self.scrapes.load(Ordering::Relaxed)
    }

    /// Stops the accept loop and returns the total scrape count.
    pub fn shutdown(mut self) -> u64 {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
        self.scrapes.load(Ordering::Relaxed)
    }
}

impl Drop for PromServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_one(stream: &mut TcpStream, body: &str) -> std::io::Result<()> {
    stream.set_nonblocking(false)?;
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    // Drain the request head; we serve the same body for any path.
    let mut buf = [0u8; 1024];
    let mut head = Vec::new();
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                head.extend_from_slice(&buf[..n]);
                if head.windows(4).any(|w| w == b"\r\n\r\n") || head.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let response = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{}",
        body.len(),
        body
    );
    stream.write_all(response.as_bytes())?;
    stream.flush()
}

/// Curl-less scrape client: fetches one exposition body from `addr`.
pub fn scrape(addr: &SocketAddr) -> std::io::Result<String> {
    let mut stream = TcpStream::connect_timeout(addr, Duration::from_secs(2))?;
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: falcon\r\nConnection: close\r\n\r\n")?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw)?;
    match raw.split_once("\r\n\r\n") {
        Some((_, body)) => Ok(body.to_string()),
        None => Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "response had no header/body separator",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::WorkerSample;

    fn sample() -> Vec<WorkerSample> {
        let mut w0 = WorkerSample::zeroed(2, 5);
        w0.counters.sweeps = 11;
        w0.counters.delivered = 7;
        w0.counters.drops[4] = 2;
        w0.stall.busy_ns = 900;
        w0.stall.wall_ns = 1_000;
        w0.ring_depth = 3;
        w0.depth_staleness = 8;
        w0.stage_service_ns[0].record_n(250, 10);
        vec![w0, WorkerSample::zeroed(2, 5)]
    }

    fn labels() -> Vec<String> {
        vec!["pnic_poll".into(), "outer_stack".into()]
    }

    #[test]
    fn render_parse_round_trip() {
        let body = render(42, &sample(), &labels());
        let metrics = parse_exposition(&body);
        let get = |name: &str, worker: &str| -> Vec<&PromMetric> {
            metrics
                .iter()
                .filter(|m| m.name == name && m.label("worker") == Some(worker))
                .collect()
        };
        assert_eq!(get("falcon_worker_delivered_total", "0")[0].value, 7.0);
        assert_eq!(get("falcon_worker_delivered_total", "1")[0].value, 0.0);
        let malformed = metrics
            .iter()
            .find(|m| {
                m.name == "falcon_worker_drops_total"
                    && m.label("worker") == Some("0")
                    && m.label("reason") == Some("malformed")
            })
            .expect("malformed drop counter");
        assert_eq!(malformed.value, 2.0);
        let busy = metrics
            .iter()
            .find(|m| {
                m.name == "falcon_worker_stall_ns_total"
                    && m.label("worker") == Some("0")
                    && m.label("bucket") == Some("busy")
            })
            .expect("busy stall counter");
        assert_eq!(busy.value, 900.0);
        let q50 = metrics
            .iter()
            .find(|m| {
                m.name == "falcon_stage_service_ns"
                    && m.label("worker") == Some("0")
                    && m.label("stage") == Some("pnic_poll")
                    && m.label("quantile") == Some("0.5")
            })
            .expect("service summary");
        assert!(q50.value >= 250.0);
        assert_eq!(get("falcon_worker_depth_staleness", "0")[0].value, 8.0);
    }

    #[test]
    fn listener_serves_published_body() {
        let server = PromServer::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = server.local_addr();
        server.publish(render(1, &sample(), &labels()));
        let body = scrape(&addr).expect("scrape");
        assert!(body.contains("falcon_worker_delivered_total{worker=\"0\"} 7"));
        let parsed = parse_exposition(&body);
        assert!(!parsed.is_empty());
        assert_eq!(server.scrapes(), 1);
        assert_eq!(server.shutdown(), 1);
    }
}

//! Property: single-bit corruption of a checksummed VXLAN frame.
//!
//! The receive path verifies every byte it can: the outer dst MAC is the
//! host NIC's filter, the outer IPv4 header carries its own checksum,
//! the outer UDP length fields must agree with the buffer, the VNI must
//! match the overlay, the inner MACs must match the bridge's FDB, and
//! the inner L4 checksum (over the IPv4 pseudo-header) covers the inner
//! headers and payload. What it *cannot* verify is exactly the
//! unchecksummed outer-UDP envelope: the outer source MAC (no Ethernet
//! FCS in the model), the outer UDP source port and absent checksum
//! (RFC 7348 transmits zero over IPv4), and the VXLAN reserved bits
//! (RFC 7348 says "ignored on receipt"). This property pins that
//! boundary: flipping any single bit is either detected, or the flip
//! landed in that enumerated blind spot — in which case the delivered
//! payload is still byte-identical to what was sent.

use falcon_khash::FlowKeys;
use falcon_packet::encap::{
    build_tcp_frame, build_udp_frame, decap_bounds, dissect_flow, fill_l4_checksum,
    verify_l4_checksum, vxlan_encapsulate, EncapParams,
};
use falcon_packet::{
    EtherType, EthernetHdr, Ipv4Addr4, MacAddr, TcpFlags, ETHERNET_HDR_LEN, IPV4_HDR_LEN,
    TCP_HDR_LEN, UDP_HDR_LEN, VXLAN_OVERHEAD,
};
use proptest::prelude::*;

/// Everything the receiver knows out-of-band: its own MAC, the overlay
/// VNI, the bridge FDB, and the expected flow.
struct Oracle {
    outer_dst: MacAddr,
    inner_src: MacAddr,
    inner_dst: MacAddr,
    vni: u32,
    keys: FlowKeys,
}

/// The full receive-side verification chain: pNIC (outer parse + MAC
/// filter + checksum verify), VXLAN device (bounds decap + VNI), bridge
/// (FDB over dissected keys), veth (inner checksum verify + payload
/// extraction). Any error means the corruption was detected.
fn receive(outer: &[u8], o: &Oracle) -> Result<Vec<u8>, String> {
    let eth = EthernetHdr::parse(outer).map_err(|e| e.to_string())?;
    if eth.ethertype != EtherType::Ipv4 {
        return Err("outer not IPv4".into());
    }
    if eth.dst != o.outer_dst {
        return Err("outer dst MAC not ours".into());
    }
    verify_l4_checksum(outer).map_err(|e| e.to_string())?;
    let b = decap_bounds(outer).map_err(|e| e.to_string())?;
    if b.vni != o.vni {
        return Err("wrong VNI".into());
    }
    let inner = &outer[b.inner];
    let ieth = EthernetHdr::parse(inner).map_err(|e| e.to_string())?;
    if ieth.dst != o.inner_dst || ieth.src != o.inner_src {
        return Err("inner MAC not in FDB".into());
    }
    let keys = dissect_flow(inner).map_err(|e| e.to_string())?;
    if keys != o.keys {
        return Err("flow keys mismatch".into());
    }
    verify_l4_checksum(inner).map_err(|e| e.to_string())?;
    let l4_hdr = if keys.ip_proto == 6 {
        TCP_HDR_LEN
    } else {
        UDP_HDR_LEN
    };
    Ok(inner[ETHERNET_HDR_LEN + IPV4_HDR_LEN + l4_hdr..].to_vec())
}

/// Is `(byte, bit)` in the enumerated unchecksummed outer-UDP blind
/// spot? `frame` is the post-flip buffer (needed for the one RFC 768
/// wrinkle: flipping the filled inner-UDP checksum to on-wire zero
/// silently disables that checksum).
fn in_blind_spot(frame: &[u8], byte: usize, bit: u32, inner_is_udp: bool) -> bool {
    let eth = ETHERNET_HDR_LEN; // 14
    let udp_off = eth + IPV4_HDR_LEN; // 34
    let vxlan_off = udp_off + UDP_HDR_LEN; // 42
                                           // Outer source MAC: no FCS in the model, nothing checks it.
    if (6..12).contains(&byte) {
        return true;
    }
    // Outer UDP source port (entropy field) and checksum (zero = absent
    // per RFC 7348 §4.1; a flip lands in the field nothing covers).
    if (udp_off..udp_off + 2).contains(&byte) || (udp_off + 6..udp_off + 8).contains(&byte) {
        return true;
    }
    // VXLAN flags: only the VNI-valid bit (0x08, i.e. bit 3) is
    // checked; the rest are reserved, ignored on receipt.
    if byte == vxlan_off && bit != 3 {
        return true;
    }
    // VXLAN reserved bytes.
    if (vxlan_off + 1..vxlan_off + 4).contains(&byte) || byte == vxlan_off + 7 {
        return true;
    }
    // RFC 768 wrinkle: if the flip turned the *inner UDP* checksum
    // field into on-wire zero, the receiver must treat it as "no
    // checksum" and the payload (untouched) still delivers intact.
    if inner_is_udp {
        let csum = VXLAN_OVERHEAD + eth + IPV4_HDR_LEN + 6;
        if (csum..csum + 2).contains(&byte) && frame[csum] == 0 && frame[csum + 1] == 0 {
            return true;
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn single_bit_flip_detected_or_in_outer_blind_spot(
        use_tcp in any::<bool>(),
        payload_len in 0usize..=1200,
        flow_nibble in 0u32..=15,
        flip_seed in any::<u64>(),
    ) {
        let keys = if use_tcp {
            FlowKeys::tcp(
                Ipv4Addr4::new(10, 0, 0, 1 + flow_nibble as u8).0,
                40000 + flow_nibble as u16,
                Ipv4Addr4::new(10, 0, 1, 1).0,
                5201,
            )
        } else {
            FlowKeys::udp(
                Ipv4Addr4::new(10, 0, 0, 1 + flow_nibble as u8).0,
                40000 + flow_nibble as u16,
                Ipv4Addr4::new(10, 0, 1, 1).0,
                8080,
            )
        };
        let inner_src = MacAddr::from_index(0x100 + flow_nibble as u64);
        let inner_dst = MacAddr::from_index(0x200 + flow_nibble as u64);
        let payload: Vec<u8> = (0..payload_len).map(|i| (i as u8).wrapping_mul(31)).collect();
        let mut inner = if use_tcp {
            build_tcp_frame(
                inner_src, inner_dst, &keys, 7000, 0, TcpFlags::data(), 0xFFFF, &payload,
            )
        } else {
            build_udp_frame(inner_src, inner_dst, &keys, &payload)
        };
        fill_l4_checksum(&mut inner).unwrap();
        let params = EncapParams {
            src_mac: MacAddr::from_index(0x10),
            dst_mac: MacAddr::from_index(0x20),
            src_ip: Ipv4Addr4::new(192, 168, 0, 1),
            dst_ip: Ipv4Addr4::new(192, 168, 0, 2),
            src_port: 49152 + flow_nibble as u16,
            vni: 42,
        };
        let pristine = vxlan_encapsulate(&inner, &params);
        let oracle = Oracle {
            outer_dst: params.dst_mac,
            inner_src,
            inner_dst,
            vni: params.vni,
            keys,
        };

        // Sanity: the uncorrupted frame delivers the exact payload.
        prop_assert_eq!(receive(&pristine, &oracle).unwrap(), payload.clone());

        // Flip exactly one bit, anywhere.
        let bit_index = flip_seed % (pristine.len() as u64 * 8);
        let (byte, bit) = ((bit_index / 8) as usize, (bit_index % 8) as u32);
        let mut corrupt = pristine.clone();
        corrupt[byte] ^= 1 << bit;

        match receive(&corrupt, &oracle) {
            Err(_) => {} // Detected: the common case.
            Ok(delivered) => {
                prop_assert!(
                    in_blind_spot(&corrupt, byte, bit, !use_tcp),
                    "undetected flip at byte {} bit {} is outside the \
                     unchecksummed outer-UDP envelope",
                    byte,
                    bit
                );
                prop_assert_eq!(
                    delivered,
                    payload,
                    "blind-spot flip must not touch the delivered payload"
                );
            }
        }
    }

    /// The chunked [`mix64`](falcon_packet::mix64) digest that replaced
    /// FNV-1a keeps the corruption-detection contract the wire oracle
    /// rides on: any single-bit flip anywhere in a payload changes the
    /// digest, and so does any truncation (the length is mixed into the
    /// seed, so a shorter prefix can never collide with its original).
    #[test]
    fn digest_detects_single_bit_flips_and_truncation(
        payload in proptest::collection::vec(any::<u8>(), 1..=1500),
        seed in any::<u64>(),
        flip_seed in any::<u64>(),
    ) {
        let pristine = falcon_packet::mix64(seed, &payload);

        let bit_index = flip_seed % (payload.len() as u64 * 8);
        let (byte, bit) = ((bit_index / 8) as usize, (bit_index % 8) as u32);
        let mut corrupt = payload.clone();
        corrupt[byte] ^= 1 << bit;
        prop_assert_ne!(
            falcon_packet::mix64(seed, &corrupt),
            pristine,
            "single-bit flip at byte {} bit {} went undetected",
            byte,
            bit
        );

        let cut = (flip_seed >> 32) as usize % payload.len();
        prop_assert_ne!(
            falcon_packet::mix64(seed, &payload[..cut]),
            pristine,
            "truncation to {} bytes went undetected",
            cut
        );
    }
}

//! Device registry: ifindex allocation and descriptors.
//!
//! Every network device gets a kernel-style `ifindex` (starting at 1,
//! like Linux). The ifindex matters beyond bookkeeping: it is the extra
//! hash input that lets Falcon distinguish processing stages of the
//! same flow (`hash_32(skb.hash + ifindex)`).

use serde::{Deserialize, Serialize};

/// What kind of device an ifindex names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// Physical NIC.
    Pnic,
    /// VXLAN tunnel endpoint.
    Vxlan,
    /// Linux bridge.
    Bridge,
    /// veth pair endpoint (container gateway).
    Veth,
    /// A synthetic sub-stage created by softirq splitting (e.g. the
    /// "pNIC(2)" half of GRO-splitting in paper Figure 9b). It has its
    /// own ifindex so the split halves hash to different CPUs.
    SplitStage,
}

impl DeviceKind {
    /// Display name.
    pub fn label(self) -> &'static str {
        match self {
            DeviceKind::Pnic => "pNIC",
            DeviceKind::Vxlan => "vxlan",
            DeviceKind::Bridge => "bridge",
            DeviceKind::Veth => "veth",
            DeviceKind::SplitStage => "split",
        }
    }
}

/// Descriptor of one registered device.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DeviceDesc {
    /// The kernel-style interface index (>= 1).
    pub ifindex: u32,
    /// Device kind.
    pub kind: DeviceKind,
    /// Interface name (`eth0`, `vxlan0`, `docker0`, `veth3`...).
    pub name: String,
}

/// The machine's device table.
#[derive(Debug, Default)]
pub struct DeviceTable {
    devices: Vec<DeviceDesc>,
}

impl DeviceTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        DeviceTable::default()
    }

    /// Registers a device; returns its ifindex.
    pub fn register(&mut self, kind: DeviceKind, name: impl Into<String>) -> u32 {
        let ifindex = self.devices.len() as u32 + 1;
        self.devices.push(DeviceDesc {
            ifindex,
            kind,
            name: name.into(),
        });
        ifindex
    }

    /// Looks up a device by ifindex.
    pub fn get(&self, ifindex: u32) -> Option<&DeviceDesc> {
        if ifindex == 0 {
            return None;
        }
        self.devices.get(ifindex as usize - 1)
    }

    /// Returns the name of a device, or `"?"`.
    pub fn name(&self, ifindex: u32) -> &str {
        self.get(ifindex).map_or("?", |d| d.name.as_str())
    }

    /// Number of registered devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Returns `true` if no devices are registered.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// Iterates over all descriptors.
    pub fn iter(&self) -> impl Iterator<Item = &DeviceDesc> {
        self.devices.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ifindex_starts_at_one() {
        let mut table = DeviceTable::new();
        assert!(table.is_empty());
        let eth0 = table.register(DeviceKind::Pnic, "eth0");
        let vxlan0 = table.register(DeviceKind::Vxlan, "vxlan0");
        assert_eq!(eth0, 1);
        assert_eq!(vxlan0, 2);
        assert_eq!(table.len(), 2);
    }

    #[test]
    fn lookup_and_names() {
        let mut table = DeviceTable::new();
        let idx = table.register(DeviceKind::Bridge, "docker0");
        assert_eq!(table.get(idx).unwrap().kind, DeviceKind::Bridge);
        assert_eq!(table.name(idx), "docker0");
        assert_eq!(table.name(0), "?");
        assert_eq!(table.name(99), "?");
        assert!(table.get(0).is_none());
    }

    #[test]
    fn labels() {
        assert_eq!(DeviceKind::Pnic.label(), "pNIC");
        assert_eq!(DeviceKind::Veth.label(), "veth");
        assert_eq!(DeviceKind::SplitStage.label(), "split");
    }
}

//! Experiment harness: everything needed to regenerate the paper's
//! evaluation.
//!
//! * [`scenario`] — canonical machine topologies and the
//!   Host / Con (vanilla overlay) / Falcon configuration triples every
//!   figure compares.
//! * [`measure`] — the measurement protocol: warm up, snapshot, run the
//!   measured window, diff. Produces [`measure::RunStats`] with packet
//!   rates, latency percentiles, per-core/per-context CPU usage,
//!   interrupt counts and steering statistics.
//! * [`table`] — plain-text result tables (what `falcon-repro` prints).
//! * [`figs`] — one module per figure of the paper (2, 4, 5, 6, 9a,
//!   10–19), each returning a [`table::FigResult`].
//! * [`tracedrun`] — representative traced runs backing
//!   `falcon-repro --trace` (Chrome/Perfetto timeline JSON) and
//!   `--stage-latency` (per-stage queueing/service decomposition).
//! * [`dataplane`] — the real-thread executor experiment backing
//!   `falcon-repro --dataplane`: the modeled rx path busy-spun on
//!   pinned OS threads, vanilla vs Falcon, measured on the wall clock.
//!
//! Run everything with the `falcon-repro` binary:
//!
//! ```text
//! falcon-repro --quick all
//! falcon-repro fig10 fig12
//! falcon-repro --list
//! ```

pub mod dataplane;
pub mod figs;
pub mod ingest;
pub mod measure;
pub mod ratesearch;
pub mod scenario;
pub mod table;
pub mod tracedrun;

pub use measure::{RunStats, Scale};
pub use ratesearch::{max_sustainable, RatePoint};
pub use scenario::{Mode, Scenario};
pub use table::{FigResult, Table};

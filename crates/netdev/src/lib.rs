//! Network device models for the simulated data path.
//!
//! Passive state of every device the overlay receive path crosses
//! (paper Figure 3), in the order a packet meets them:
//!
//! * [`Wire`] — the physical link: bandwidth-serialized,
//!   full-duplex, with propagation delay. The 10G-vs-100G contrast in
//!   the paper's Figure 2 comes from this model.
//! * [`PhysNic`] — a multi-queue NIC: Toeplitz RSS over
//!   the outer flow picks a queue; each queue has a bounded
//!   [`RxRing`] and an IRQ affinity core.
//! * [`GroCells`] — the VXLAN device's per-CPU
//!   `gro_cell` queues, polled by `gro_cell_poll` in a second softirq.
//! * [`Fdb`] — the Linux bridge's forwarding database.
//! * [`Backlogs`] — per-CPU `input_pkt_queue`s
//!   (`softnet_data`), the queues `netif_rx`/`enqueue_to_backlog` feed
//!   and `process_backlog` drains. RPS and Falcon both move packets
//!   between cores by enqueuing here.
//! * [`DeviceTable`] — ifindex allocation and
//!   device descriptors (`skb->dev` updates at each hop).
//!
//! The *active* logic — who polls what, on which core, raising which
//! softirq — lives in `falcon-netstack`.

pub mod bridge;
pub mod grocell;
pub mod nic;
pub mod registry;
pub mod ring;
pub mod wire;

pub use bridge::Fdb;
pub use grocell::GroCells;
pub use nic::{NicConfig, PhysNic};
pub use registry::{DeviceKind, DeviceTable};
pub use ring::{Backlogs, RxRing};
pub use wire::{LinkSpeed, Wire};

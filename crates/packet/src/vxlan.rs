//! VXLAN header codec (RFC 7348).

use serde::{Deserialize, Serialize};

use crate::CodecError;

/// Length of a VXLAN header.
pub const VXLAN_HDR_LEN: usize = 8;

/// The "VNI valid" flag bit (the only flag RFC 7348 defines).
const FLAG_VNI_VALID: u8 = 0x08;

/// A VXLAN header: an 8-byte shim carrying a 24-bit VXLAN Network
/// Identifier (VNI) that names the overlay network segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VxlanHdr {
    /// The 24-bit VXLAN Network Identifier.
    pub vni: u32,
}

impl VxlanHdr {
    /// Creates a header for the given VNI.
    ///
    /// # Panics
    ///
    /// Panics if `vni` does not fit in 24 bits.
    pub fn new(vni: u32) -> Self {
        assert!(vni < 1 << 24, "VNI must fit in 24 bits");
        VxlanHdr { vni }
    }

    /// Serializes the header into `buf`.
    ///
    /// # Panics
    ///
    /// Panics if `buf` is shorter than [`VXLAN_HDR_LEN`].
    pub fn write(&self, buf: &mut [u8]) {
        buf[0] = FLAG_VNI_VALID;
        buf[1] = 0;
        buf[2] = 0;
        buf[3] = 0;
        let vni = self.vni.to_be_bytes();
        buf[4] = vni[1];
        buf[5] = vni[2];
        buf[6] = vni[3];
        buf[7] = 0;
    }

    /// Appends the header to a byte vector.
    pub fn push_onto(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.resize(start + VXLAN_HDR_LEN, 0);
        self.write(&mut out[start..]);
    }

    /// Parses a header from the front of `buf`.
    pub fn parse(buf: &[u8]) -> Result<VxlanHdr, CodecError> {
        if buf.len() < VXLAN_HDR_LEN {
            return Err(CodecError::Truncated {
                what: "vxlan",
                need: VXLAN_HDR_LEN,
                have: buf.len(),
            });
        }
        if buf[0] & FLAG_VNI_VALID == 0 {
            return Err(CodecError::Malformed {
                what: "vxlan",
                why: "VNI-valid flag clear",
            });
        }
        Ok(VxlanHdr {
            vni: u32::from_be_bytes([0, buf[4], buf[5], buf[6]]),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let hdr = VxlanHdr::new(0x00AB_CDEF);
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        assert_eq!(buf.len(), VXLAN_HDR_LEN);
        assert_eq!(VxlanHdr::parse(&buf).unwrap(), hdr);
    }

    #[test]
    #[should_panic(expected = "24 bits")]
    fn rejects_oversized_vni() {
        let _ = VxlanHdr::new(1 << 24);
    }

    #[test]
    fn rejects_missing_flag() {
        let mut buf = vec![0u8; VXLAN_HDR_LEN];
        VxlanHdr::new(42).write(&mut buf);
        buf[0] = 0;
        assert!(matches!(
            VxlanHdr::parse(&buf),
            Err(CodecError::Malformed { what: "vxlan", .. })
        ));
    }

    #[test]
    fn rejects_truncated() {
        assert!(matches!(
            VxlanHdr::parse(&[0u8; 4]),
            Err(CodecError::Truncated { what: "vxlan", .. })
        ));
    }

    #[test]
    fn vni_zero_is_valid() {
        let hdr = VxlanHdr::new(0);
        let mut buf = Vec::new();
        hdr.push_onto(&mut buf);
        assert_eq!(VxlanHdr::parse(&buf).unwrap().vni, 0);
    }
}

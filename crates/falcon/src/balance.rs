//! `get_falcon_cpu`: the device-aware, two-choice CPU selector
//! (Algorithm 1 of the paper), and its [`Steering`] implementation.

use falcon_cpusim::LoadTracker;
use falcon_khash::hash_32;
use falcon_netstack::{SteerCtx, Steering};
use serde::{Deserialize, Serialize};

use crate::config::FalconConfig;

/// Decision counters, for the overhead analysis (paper §6.3).
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct FalconStats {
    /// Stage transitions where Falcon picked a CPU.
    pub decisions: u64,
    /// Decisions where the first-choice core was busy and the second
    /// random choice was used.
    pub second_choices: u64,
    /// Stage transitions where Falcon was gated off by the load
    /// threshold (the original path ran instead).
    pub gated_off: u64,
}

/// The Falcon CPU-selection policy (Algorithm 1).
#[derive(Debug, Clone)]
pub struct FalconSteering {
    config: FalconConfig,
    /// `L_avg`, updated from the periodic load sample (the paper's
    /// `do_timer` hook reading `/proc/stat` every N ticks).
    l_avg: f64,
    /// Gate state, with hysteresis: off at `>= threshold`, back on
    /// below `0.9 * threshold` (prevents flapping when the load sits
    /// exactly at the threshold).
    active: bool,
    /// Consecutive load samples spent gated off (debounces the
    /// return-to-local migration below).
    inactive_samples: u32,
    stats: FalconStats,
    /// Whether decisions are recorded into `pending`.
    tracing: bool,
    /// Decision events buffered until the receive path drains them
    /// (the policy has no access to the tracer or the clock).
    pending: Vec<falcon_trace::EventKind>,
}

/// Pure Algorithm 1, lines 17–27, generic over the load source:
/// `load(cpu)` returns that core's current load in `0..=1`. The
/// simulation passes the smoothed [`LoadTracker`]; the real-thread
/// dataplane passes live per-worker queue depths. Returns
/// `(first_choice, chosen_cpu, used_second_choice)`.
pub fn falcon_choices_by(
    config: &FalconConfig,
    rx_hash: u32,
    ifindex: u32,
    load: impl Fn(usize) -> f64,
) -> (usize, usize, bool) {
    // First choice based on the device hash (line 19–20). With
    // device_aware off (ablation), the hash degenerates to flow-only —
    // every stage of a flow collapses onto one core, like RPS.
    let input = if config.device_aware {
        rx_hash.wrapping_add(ifindex)
    } else {
        rx_hash
    };
    let hash = hash_32(input, 32);
    let first = config.falcon_cpus.pick_by_hash(hash);
    if !config.two_choice || load(first) < config.load_threshold {
        return (first, first, false);
    }
    // Second choice if the first one is overloaded (line 25–26):
    // re-hash and commit, busy or not, to avoid load-chasing
    // fluctuations.
    let second = config.falcon_cpus.pick_by_hash(hash_32(hash, 32));
    (first, second, true)
}

/// Pure Algorithm 1, lines 17–27, exposing both hash choices: returns
/// `(first_choice, chosen_cpu, used_second_choice)`.
pub fn falcon_choices(
    config: &FalconConfig,
    rx_hash: u32,
    ifindex: u32,
    loads: &LoadTracker,
) -> (usize, usize, bool) {
    falcon_choices_by(config, rx_hash, ifindex, |cpu| loads.core_load(cpu))
}

/// Pure Algorithm 1, lines 17–27: pick the CPU for a softirq given the
/// flow hash, the device index, the per-core loads, and the config.
///
/// Returns `(cpu, used_second_choice)`.
pub fn get_falcon_cpu(
    config: &FalconConfig,
    rx_hash: u32,
    ifindex: u32,
    loads: &LoadTracker,
) -> (usize, bool) {
    let (_, chosen, second) = falcon_choices(config, rx_hash, ifindex, loads);
    (chosen, second)
}

impl FalconSteering {
    /// Creates the policy.
    pub fn new(config: FalconConfig) -> Self {
        FalconSteering {
            config,
            l_avg: 0.0,
            active: true,
            inactive_samples: 0,
            stats: FalconStats::default(),
            tracing: false,
            pending: Vec::new(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &FalconConfig {
        &self.config
    }

    /// Decision counters.
    pub fn stats(&self) -> FalconStats {
        self.stats
    }

    /// The last observed system-average load.
    pub fn l_avg(&self) -> f64 {
        self.l_avg
    }

    /// Whether Falcon is currently active (not gated off by load).
    pub fn is_active(&self) -> bool {
        self.config.always_on || self.active
    }
}

impl Steering for FalconSteering {
    fn name(&self) -> &'static str {
        "falcon"
    }

    fn select_cpu(&mut self, ctx: &SteerCtx<'_>) -> Option<usize> {
        // Enable Falcon only if there is room for parallelization
        // (Algorithm 1, lines 6–13).
        if !self.is_active() {
            self.stats.gated_off += 1;
            if self.tracing {
                self.pending.push(falcon_trace::EventKind::FalconGated {
                    ifindex: ctx.ifindex,
                    cpu: ctx.current_cpu,
                });
            }
            return None;
        }
        let (first, cpu, second) =
            falcon_choices(&self.config, ctx.rx_hash, ctx.ifindex, ctx.loads);
        self.stats.decisions += 1;
        if second {
            self.stats.second_choices += 1;
        }
        if self.tracing {
            self.pending.push(falcon_trace::EventKind::FalconChoice {
                ifindex: ctx.ifindex,
                hash: ctx.rx_hash,
                first,
                chosen: cpu,
                second,
            });
        }
        Some(cpu)
    }

    fn on_load_sample(&mut self, loads: &LoadTracker) {
        // Gate on the average load of the cores Falcon actually uses:
        // idle cores outside FALCON_CPUS (and dedicated app cores) say
        // nothing about whether there is room to parallelize softirqs.
        let cpus = &self.config.falcon_cpus;
        let sum: f64 = cpus.iter().map(|c| loads.core_load(c)).sum();
        self.l_avg = if cpus.is_empty() {
            0.0
        } else {
            sum / cpus.len() as f64
        };
        let was_active = self.active;
        if self.active {
            if self.l_avg >= self.config.load_threshold {
                self.active = false;
                self.inactive_samples = 0;
            }
        } else if self.l_avg < self.config.load_threshold * 0.9 {
            self.active = true;
        } else {
            self.inactive_samples = self.inactive_samples.saturating_add(1);
        }
        if self.tracing && self.active != was_active {
            self.pending.push(falcon_trace::EventKind::LoadGate {
                active: self.is_active(),
                l_avg_milli: (self.l_avg * 1000.0) as u32,
            });
        }
    }

    fn allow_inflight_migration(
        &self,
        old_cpu: usize,
        new_cpu: usize,
        loads: &LoadTracker,
    ) -> bool {
        // When the load gate has been off for a sustained period there
        // are no idle cycles to exploit: flows return to their local
        // (vanilla) path rather than keep paying cross-core transfer
        // costs at saturation. Debounced, so a transient dip near the
        // threshold does not churn placements. One bounded reordering
        // transient per flow-stage.
        if !self.is_active() && self.inactive_samples >= 10 {
            return true;
        }
        if !self.is_active() {
            return false;
        }
        // Escape hotspots: a (flow, stage) pinned to an over-threshold
        // core may re-steer even with packets in flight — but only
        // towards a core with clear headroom (hysteresis), so flows
        // commit to their new home instead of ping-ponging between two
        // candidates at the load-smoothing period. The transient
        // reordering window is bounded by the old queue's depth.
        loads.core_load(old_cpu) >= self.config.load_threshold
            && loads.core_load(new_cpu) < self.config.load_threshold * 0.6
    }

    fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
        if !on {
            self.pending.clear();
        }
    }

    fn take_trace(&mut self) -> Vec<falcon_trace::EventKind> {
        std::mem::take(&mut self.pending)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_cpusim::CpuSet;
    use falcon_metrics::{Context, CpuLedger};
    use falcon_simcore::{SimDuration, SimTime};

    fn idle_loads(n: usize) -> LoadTracker {
        LoadTracker::new(n)
    }

    /// Builds a tracker where `busy_core` is ~fully loaded.
    fn loads_with_hotspot(n: usize, busy_core: usize) -> LoadTracker {
        let mut ledger = CpuLedger::new(n);
        let mut tracker = LoadTracker::new(n);
        for tick in 1..=10u64 {
            ledger.charge(
                busy_core,
                Context::SoftIrq,
                "f",
                SimDuration::from_millis(1),
            );
            tracker.sample(SimTime::from_millis(tick), &ledger);
        }
        assert!(tracker.core_load(busy_core) > 0.9);
        tracker
    }

    #[test]
    fn same_flow_same_device_is_deterministic() {
        let cfg = FalconConfig::new(CpuSet::range(1, 7));
        let loads = idle_loads(8);
        let (cpu1, _) = get_falcon_cpu(&cfg, 0xABCD_1234, 3, &loads);
        let (cpu2, _) = get_falcon_cpu(&cfg, 0xABCD_1234, 3, &loads);
        assert_eq!(cpu1, cpu2, "order preservation requires determinism");
        assert!(cfg.falcon_cpus.contains(cpu1));
    }

    #[test]
    fn different_devices_usually_map_to_different_cpus() {
        // The point of device-aware hashing: a flow's stages spread.
        let cfg = FalconConfig::new(CpuSet::range(0, 8));
        let loads = idle_loads(8);
        let mut spread = 0;
        let flows = 200u32;
        for f in 0..flows {
            let hash = 0x9E37_0000u32.wrapping_add(f.wrapping_mul(2_654_435_761));
            let (a, _) = get_falcon_cpu(&cfg, hash, 1, &loads);
            let (b, _) = get_falcon_cpu(&cfg, hash, 3, &loads);
            let (c, _) = get_falcon_cpu(&cfg, hash, 5, &loads);
            if a != b || b != c {
                spread += 1;
            }
        }
        assert!(
            spread as f64 / flows as f64 > 0.8,
            "only {spread}/{flows} flows had stages on distinct cores"
        );
    }

    #[test]
    fn ablation_without_device_awareness_collapses_stages() {
        let cfg = FalconConfig::new(CpuSet::range(0, 8)).with_device_aware(false);
        let loads = idle_loads(8);
        for hash in [1u32, 0xDEAD, 0xBEEF, 0x1234_5678] {
            let (a, _) = get_falcon_cpu(&cfg, hash, 1, &loads);
            let (b, _) = get_falcon_cpu(&cfg, hash, 3, &loads);
            let (c, _) = get_falcon_cpu(&cfg, hash, 5, &loads);
            assert_eq!(a, b);
            assert_eq!(b, c, "flow-only hash cannot distinguish stages");
        }
    }

    #[test]
    fn two_choice_steers_away_from_hotspot() {
        let cfg = FalconConfig::new(CpuSet::range(0, 8));
        // Find a (hash, ifindex) whose first choice is core 5.
        let loads = idle_loads(8);
        let (hash, ifx) = (0..10_000u32)
            .flat_map(|h| [(h, 1u32), (h, 3u32)])
            .find(|&(h, i)| get_falcon_cpu(&cfg, h, i, &loads).0 == 5)
            .expect("some input maps to core 5");
        // Now overload core 5: the second choice must be used.
        let hot = loads_with_hotspot(8, 5);
        let (cpu, second) = get_falcon_cpu(&cfg, hash, ifx, &hot);
        assert!(second, "busy first choice triggers the second choice");
        // The second choice is a re-hash; with 8 CPUs it almost surely
        // differs, and for this particular input it must be stable.
        assert_eq!(get_falcon_cpu(&cfg, hash, ifx, &hot).0, cpu);
    }

    #[test]
    fn choices_by_accepts_queue_depth_loads() {
        // The dataplane's load source is a closure over live queue
        // depths; it must agree with the LoadTracker-based entry point.
        let cfg = FalconConfig::new(CpuSet::range(0, 8));
        let loads = idle_loads(8);
        let (hash, ifx) = (0..10_000u32)
            .flat_map(|h| [(h, 1u32), (h, 3u32)])
            .find(|&(h, i)| get_falcon_cpu(&cfg, h, i, &loads).0 == 5)
            .expect("some input maps to core 5");
        // Idle closure: identical to the tracker-based decision.
        let (first, chosen, second) = falcon_choices_by(&cfg, hash, ifx, |_| 0.0);
        assert_eq!(
            (first, chosen, second),
            falcon_choices(&cfg, hash, ifx, &loads)
        );
        // Saturate core 5 through the closure: second choice engages.
        let (first, chosen, second) =
            falcon_choices_by(&cfg, hash, ifx, |c| if c == 5 { 1.0 } else { 0.0 });
        assert_eq!(first, 5);
        assert!(second, "depth-saturated first choice triggers rehash");
        let again = falcon_choices_by(&cfg, hash, ifx, |c| if c == 5 { 1.0 } else { 0.0 });
        assert_eq!(again.1, chosen, "second choice is deterministic");
    }

    #[test]
    fn static_variant_never_uses_second_choice() {
        let cfg = FalconConfig::new(CpuSet::range(0, 8)).with_two_choice(false);
        let hot = loads_with_hotspot(8, 5);
        for h in 0..1000u32 {
            let (_, second) = get_falcon_cpu(&cfg, h, 1, &hot);
            assert!(!second);
        }
    }

    #[test]
    fn steering_gates_on_system_load() {
        let mut steering = FalconSteering::new(FalconConfig::new(CpuSet::range(0, 4)));
        let hot = loads_with_hotspot(4, 0); // avg load ~0.25 — below 0.85.
        steering.on_load_sample(&hot);
        assert!(steering.is_active());

        // Overload every core.
        let mut ledger = CpuLedger::new(4);
        let mut all_hot = LoadTracker::new(4);
        for tick in 1..=10u64 {
            for c in 0..4 {
                ledger.charge(c, Context::SoftIrq, "f", SimDuration::from_millis(1));
            }
            all_hot.sample(SimTime::from_millis(tick), &ledger);
        }
        steering.on_load_sample(&all_hot);
        assert!(
            !steering.is_active(),
            "L_avg above threshold disables Falcon"
        );
        let ctx = SteerCtx {
            rx_hash: 1,
            ifindex: 2,
            current_cpu: 0,
            loads: &all_hot,
        };
        assert_eq!(steering.select_cpu(&ctx), None);
        assert_eq!(steering.stats().gated_off, 1);
    }

    #[test]
    fn always_on_ignores_the_gate() {
        let mut steering =
            FalconSteering::new(FalconConfig::new(CpuSet::range(0, 4)).with_always_on(true));
        let mut ledger = CpuLedger::new(4);
        let mut all_hot = LoadTracker::new(4);
        for tick in 1..=10u64 {
            for c in 0..4 {
                ledger.charge(c, Context::SoftIrq, "f", SimDuration::from_millis(1));
            }
            all_hot.sample(SimTime::from_millis(tick), &ledger);
        }
        steering.on_load_sample(&all_hot);
        assert!(steering.is_active());
        let ctx = SteerCtx {
            rx_hash: 1,
            ifindex: 2,
            current_cpu: 0,
            loads: &all_hot,
        };
        assert!(steering.select_cpu(&ctx).is_some());
    }

    #[test]
    fn tracing_buffers_choice_and_gate_events() {
        use falcon_trace::EventKind;

        let mut steering = FalconSteering::new(FalconConfig::new(CpuSet::range(0, 4)));
        let loads = idle_loads(4);
        let ctx = SteerCtx {
            rx_hash: 0xABCD,
            ifindex: 2,
            current_cpu: 0,
            loads: &loads,
        };
        // Tracing off: decisions happen but nothing is buffered.
        steering.select_cpu(&ctx);
        assert!(steering.take_trace().is_empty());

        steering.set_tracing(true);
        let chosen = steering.select_cpu(&ctx).expect("active policy decides");
        let events = steering.take_trace();
        assert_eq!(events.len(), 1);
        match events[0] {
            EventKind::FalconChoice {
                ifindex,
                hash,
                first,
                chosen: c,
                second,
            } => {
                assert_eq!(ifindex, 2);
                assert_eq!(hash, 0xABCD);
                assert_eq!(c, chosen);
                assert!(!second, "idle cores: first choice fits");
                assert_eq!(first, chosen);
            }
            ref other => panic!("expected FalconChoice, got {other:?}"),
        }
        assert!(steering.take_trace().is_empty(), "drained");

        // Overload every core: the gate flips off (LoadGate event) and
        // subsequent decisions report FalconGated.
        let mut ledger = CpuLedger::new(4);
        let mut all_hot = LoadTracker::new(4);
        for tick in 1..=10u64 {
            for c in 0..4 {
                ledger.charge(c, Context::SoftIrq, "f", SimDuration::from_millis(1));
            }
            all_hot.sample(SimTime::from_millis(tick), &ledger);
        }
        steering.on_load_sample(&all_hot);
        let events = steering.take_trace();
        assert_eq!(events.len(), 1);
        assert!(
            matches!(events[0], EventKind::LoadGate { active: false, .. }),
            "{:?}",
            events[0]
        );
        let hot_ctx = SteerCtx {
            rx_hash: 1,
            ifindex: 2,
            current_cpu: 3,
            loads: &all_hot,
        };
        assert_eq!(steering.select_cpu(&hot_ctx), None);
        let events = steering.take_trace();
        assert!(
            matches!(events[0], EventKind::FalconGated { ifindex: 2, cpu: 3 }),
            "{:?}",
            events[0]
        );
    }

    #[test]
    fn decisions_are_counted() {
        let mut steering = FalconSteering::new(FalconConfig::new(CpuSet::range(0, 4)));
        let loads = idle_loads(4);
        for i in 0..10u32 {
            let ctx = SteerCtx {
                rx_hash: i,
                ifindex: 2,
                current_cpu: 0,
                loads: &loads,
            };
            steering.select_cpu(&ctx);
        }
        assert_eq!(steering.stats().decisions, 10);
        assert_eq!(
            steering.stats().second_choices,
            0,
            "idle cores: first choice fits"
        );
    }
}

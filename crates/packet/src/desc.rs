//! [`PktDesc`]: the compact, `Copy` packet descriptor the real-thread
//! dataplane moves through its rings.
//!
//! The deterministic simulation carries full frame bytes in an
//! [`SkBuff`](crate::SkBuff) because it re-parses headers at every
//! stage. The multi-threaded executor runs the *modeled* receive path —
//! stage costs, steering, and ordering are what is being exercised — so
//! its queues move a 40-byte descriptor instead of an allocation per
//! packet, the way a real driver passes descriptors while the payload
//! stays put in DMA memory.

use crate::PacketId;

/// Immutable identity of one packet travelling the threaded dataplane.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PktDesc {
    /// Unique id of this packet within one run.
    pub id: PacketId,
    /// Simulation-level flow identifier.
    pub flow: u64,
    /// Per-flow sequence number assigned at injection; the ordering
    /// invariant asserts it is strictly increasing per (flow, device).
    pub seq: u64,
    /// `skb->hash`: the flow hash both RSS and Falcon steer by.
    pub rx_hash: u32,
    /// UDP payload bytes this packet represents (drives the
    /// byte-dependent components of the stage cost model).
    pub payload_len: u32,
}

impl PktDesc {
    /// Builds a descriptor.
    pub fn new(id: u64, flow: u64, seq: u64, rx_hash: u32, payload_len: u32) -> Self {
        PktDesc {
            id: PacketId(id),
            flow,
            seq,
            rx_hash,
            payload_len,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descriptor_is_small_and_copy() {
        // The whole point: a ring slot is a few words, not an skb.
        assert!(std::mem::size_of::<PktDesc>() <= 40);
        let d = PktDesc::new(7, 3, 11, 0xDEAD_BEEF, 64);
        let d2 = d; // Copy, not move.
        assert_eq!(d, d2);
        assert_eq!(d.id, PacketId(7));
        assert_eq!(d.payload_len, 64);
    }
}

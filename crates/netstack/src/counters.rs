//! End-to-end counters and measurement outputs of one simulation run.

use std::collections::HashMap;

use falcon_metrics::Histogram;
use serde::{Deserialize, Serialize};

/// Per-flow delivery statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// Application messages (datagrams / stream messages) sent.
    pub sent_msgs: u64,
    /// Payload bytes sent.
    pub sent_bytes: u64,
    /// Messages delivered to the server application.
    pub delivered_msgs: u64,
    /// Payload bytes delivered.
    pub delivered_bytes: u64,
    /// Responses (or acks, for TCP) seen back at the client.
    pub responses: u64,
}

/// Aggregated counters for one simulation run.
#[derive(Debug, Default, Clone)]
pub struct SimCounters {
    /// Per-flow statistics.
    pub flows: HashMap<u64, FlowStats>,
    /// Wire frames the client put on the link.
    pub frames_sent: u64,
    /// Frames dropped at the NIC rx ring.
    pub ring_drops: u64,
    /// Frames dropped at per-CPU backlogs.
    pub backlog_drops: u64,
    /// Frames dropped at VXLAN gro_cells.
    pub grocell_drops: u64,
    /// Datagrams that never completed IP reassembly (a fragment was
    /// dropped).
    pub reassembly_failures: u64,
    /// One-way latency: application send → server user-space delivery.
    pub latency: Histogram,
    /// Receive-path latency: NIC arrival → server user-space delivery
    /// (the kernel data-path component, excluding sender-side queueing).
    pub rx_latency: Histogram,
    /// Round-trip latency for request/response workloads.
    pub rtt: Histogram,
    /// TCP acks the server transmitted.
    pub acks_sent: u64,
    /// TCP segments retransmitted by the client transport.
    pub retransmits: u64,
    /// Falcon/steering stage-transition decisions that moved a packet
    /// to a different CPU.
    pub steered_remote: u64,
    /// Stage-transition decisions that stayed local.
    pub steered_local: u64,
    /// Packets that reached the final stage but matched no socket.
    pub lookup_failures: u64,
}

impl SimCounters {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        SimCounters::default()
    }

    /// Mutable access to a flow's stats, creating on first touch.
    pub fn flow_mut(&mut self, flow: u64) -> &mut FlowStats {
        self.flows.entry(flow).or_default()
    }

    /// Total messages delivered across flows.
    pub fn total_delivered(&self) -> u64 {
        self.flows.values().map(|f| f.delivered_msgs).sum()
    }

    /// Total payload bytes delivered across flows.
    pub fn total_delivered_bytes(&self) -> u64 {
        self.flows.values().map(|f| f.delivered_bytes).sum()
    }

    /// Total messages sent across flows.
    pub fn total_sent(&self) -> u64 {
        self.flows.values().map(|f| f.sent_msgs).sum()
    }

    /// Total drops at any queue.
    pub fn total_drops(&self) -> u64 {
        self.ring_drops + self.backlog_drops + self.grocell_drops
    }

    /// Delivered / sent, in 0–1 (1.0 when nothing was sent).
    pub fn delivery_ratio(&self) -> f64 {
        let sent = self.total_sent();
        if sent == 0 {
            1.0
        } else {
            self.total_delivered() as f64 / sent as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_flow_accumulation() {
        let mut c = SimCounters::new();
        c.flow_mut(1).sent_msgs += 10;
        c.flow_mut(1).delivered_msgs += 8;
        c.flow_mut(2).sent_msgs += 5;
        c.flow_mut(2).delivered_msgs += 5;
        assert_eq!(c.total_sent(), 15);
        assert_eq!(c.total_delivered(), 13);
        assert!((c.delivery_ratio() - 13.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn empty_ratio_is_one() {
        assert_eq!(SimCounters::new().delivery_ratio(), 1.0);
    }

    #[test]
    fn drop_totals() {
        let mut c = SimCounters::new();
        c.ring_drops = 3;
        c.backlog_drops = 4;
        c.grocell_drops = 5;
        assert_eq!(c.total_drops(), 12);
    }
}

//! `falcon-repro`: regenerate the paper's figures from the simulation.
//!
//! ```text
//! falcon-repro --list                  # available figure ids
//! falcon-repro all                     # run everything at full scale
//! falcon-repro --quick fig10           # quick (test-scale) run of one figure
//! falcon-repro --json fig18            # machine-readable output
//! falcon-repro fig11 --trace out.json  # also write a Perfetto timeline
//! falcon-repro --stage-latency         # per-stage latency decomposition
//! ```

use std::process::ExitCode;

use falcon_experiments::figs;
use falcon_experiments::measure::Scale;
use falcon_experiments::tracedrun;

fn usage() {
    eprintln!(
        "usage: falcon-repro [--quick] [--json] [--list] [--trace <out.json>] \
         [--stage-latency] <fig-id>... | all\n\
         figure ids: {}",
        figs::all()
            .iter()
            .map(|&(id, _)| id)
            .collect::<Vec<_>>()
            .join(", ")
    );
}

fn main() -> ExitCode {
    let mut scale = Scale::Full;
    let mut json = false;
    let mut trace_out: Option<String> = None;
    let mut stage_latency = false;
    let mut wanted: Vec<String> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" | "-q" => scale = Scale::Quick,
            "--json" => json = true,
            "--trace" => match args.next() {
                Some(path) => trace_out = Some(path),
                None => {
                    eprintln!("--trace requires an output path");
                    usage();
                    return ExitCode::FAILURE;
                }
            },
            "--stage-latency" => stage_latency = true,
            "--list" | "-l" => {
                for (id, _) in figs::all() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown flag: {other}");
                usage();
                return ExitCode::FAILURE;
            }
            id => wanted.push(id.to_string()),
        }
    }

    if wanted.is_empty() && trace_out.is_none() && !stage_latency {
        usage();
        return ExitCode::FAILURE;
    }

    let registry = figs::all();
    let run_all = wanted.iter().any(|w| w == "all");
    let selected: Vec<_> = registry
        .iter()
        .filter(|(id, _)| run_all || wanted.iter().any(|w| w == id))
        .collect();

    if !run_all {
        for w in &wanted {
            if !registry.iter().any(|(id, _)| id == w) {
                eprintln!("unknown figure id: {w}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    for (id, runner) in selected {
        eprintln!("running {id} ({:?} scale)...", scale);
        let result = runner(scale);
        if json {
            println!(
                "{}",
                serde_json::to_string_pretty(&result).expect("serializable")
            );
        } else {
            println!("{result}");
        }
    }

    if let Some(path) = trace_out {
        eprintln!("tracing a single-flow Falcon run ({:?} scale)...", scale);
        let trace_json = tracedrun::chrome_trace(scale);
        if let Err(e) = std::fs::write(&path, trace_json) {
            eprintln!("cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (load it at https://ui.perfetto.dev)");
    }

    if stage_latency {
        eprintln!(
            "stage-latency decomposition, Con vs Falcon ({:?} scale)...",
            scale
        );
        print!("{}", tracedrun::stage_latency_report(scale));
    }

    ExitCode::SUCCESS
}

//! Quickstart: run the same single-flow UDP stress over the vanilla
//! overlay and over Falcon, and compare.
//!
//! ```text
//! cargo run --release -p falcon-examples --bin quickstart
//! ```

use falcon_experiments::measure::Scale;
use falcon_experiments::ratesearch::max_sustainable;
use falcon_experiments::scenario::{Mode, Scenario, SF_APP_CORE};
use falcon_netdev::LinkSpeed;
use falcon_netstack::sim::SimRunner;
use falcon_netstack::{KernelVersion, Pacing};
use falcon_workloads::{UdpStressApp, UdpStressConfig};

/// Builds the paper's single-flow UDP stress at an aggregate offered
/// rate (the paper ramps the rate until the received rate plateaus).
fn build(mode: Mode, rate: f64) -> SimRunner {
    let scenario = Scenario::single_flow(mode, KernelVersion::K419, LinkSpeed::HundredGbit);
    let mut cfg = UdpStressConfig::single_flow(16);
    cfg.senders_per_flow = 3;
    cfg.pacing = Pacing::FixedPps(rate / 3.0);
    cfg.app_cores = vec![SF_APP_CORE];
    scenario.build(Box::new(UdpStressApp::new(cfg)))
}

fn main() {
    println!("Falcon quickstart: single-flow UDP stress over a VXLAN overlay");
    println!("(ramping the offered rate to each configuration's plateau)\n");

    let mut plateaus = Vec::new();
    for (name, mode) in [
        ("native host  ", Mode::Host),
        ("vanilla (Con)", Mode::Vanilla),
        ("Falcon       ", Mode::Falcon(Scenario::sf_falcon())),
    ] {
        let point = max_sustainable(&|rate| build(mode.clone(), rate), 60_000.0, Scale::Quick);
        println!(
            "{name}  sustains {:>8.1} Kpps (offered {:.1} Kpps at the plateau)",
            point.delivered_pps / 1e3,
            point.offered_pps / 1e3
        );
        plateaus.push(point.delivered_pps);
    }

    println!(
        "\noverlay/host = {:.2}, falcon/host = {:.2}",
        plateaus[1] / plateaus[0],
        plateaus[2] / plateaus[0]
    );
    println!("(The paper reports the vanilla overlay far below native and Falcon");
    println!(" recovering to ~87% of host throughput on the 100G link.)");
}

//! Rx-thread telemetry: shared counters the live-socket ingestion
//! frontend publishes while it pulls datagrams off the OS socket.
//!
//! Unlike the per-worker shards, the rx side is a single producer with
//! a handful of monotonic counters, so plain relaxed atomics are enough
//! — no seqlock, no shape invariant to guard. The sampler snapshots
//! them alongside the worker shards each tick; the JSONL exporter emits
//! one `"kind":"rx"` delta line per interval and the Prometheus
//! exposition grows `falcon_rx_*` series.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters owned by the socket rx thread. All increments
/// are relaxed: the rx thread is the only writer and the sampler only
/// needs eventually-consistent monotone reads.
#[derive(Debug, Default)]
pub struct RxCounters {
    datagrams: AtomicU64,
    batches: AtomicU64,
    eagain_spins: AtomicU64,
    runts: AtomicU64,
    sock_drops: AtomicU64,
}

impl RxCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one successful batched read of `datagrams` datagrams.
    pub fn add_batch(&self, datagrams: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.datagrams.fetch_add(datagrams, Ordering::Relaxed);
    }

    /// Records one empty read (`EAGAIN`/`EWOULDBLOCK` spin).
    pub fn add_eagain(&self) {
        self.eagain_spins.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a datagram too short to be a VXLAN outer frame, counted
    /// at the rx boundary before it ever reaches the pipeline.
    pub fn add_runt(&self) {
        self.runts.fetch_add(1, Ordering::Relaxed);
    }

    /// Publishes the kernel's cumulative receive-queue overflow count
    /// (`SO_RXQ_OVFL`); pass the latest cumulative value, not a delta.
    pub fn set_sock_drops(&self, cumulative: u64) {
        self.sock_drops.store(cumulative, Ordering::Relaxed);
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> RxSample {
        RxSample {
            datagrams: self.datagrams.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            eagain_spins: self.eagain_spins.load(Ordering::Relaxed),
            runts: self.runts.load(Ordering::Relaxed),
            sock_drops: self.sock_drops.load(Ordering::Relaxed),
        }
    }
}

/// One snapshot of the rx-thread counters (cumulative since rx start).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RxSample {
    /// Datagrams read off the socket.
    pub datagrams: u64,
    /// Batched reads that returned at least one datagram.
    pub batches: u64,
    /// Reads that returned empty (`EAGAIN` spins).
    pub eagain_spins: u64,
    /// Datagrams rejected at the rx boundary as too short.
    pub runts: u64,
    /// Kernel socket-drop estimate (`SO_RXQ_OVFL`), cumulative.
    pub sock_drops: u64,
}

impl RxSample {
    /// Counter deltas vs an earlier snapshot (saturating, so a stale
    /// `prev` can never underflow the exporters).
    pub fn delta_since(&self, prev: &RxSample) -> RxSample {
        RxSample {
            datagrams: self.datagrams.saturating_sub(prev.datagrams),
            batches: self.batches.saturating_sub(prev.batches),
            eagain_spins: self.eagain_spins.saturating_sub(prev.eagain_spins),
            runts: self.runts.saturating_sub(prev.runts),
            sock_drops: self.sock_drops.saturating_sub(prev.sock_drops),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = RxCounters::new();
        c.add_batch(8);
        c.add_batch(3);
        c.add_eagain();
        c.add_runt();
        c.set_sock_drops(5);
        let s = c.snapshot();
        assert_eq!(
            s,
            RxSample {
                datagrams: 11,
                batches: 2,
                eagain_spins: 1,
                runts: 1,
                sock_drops: 5,
            }
        );
    }

    #[test]
    fn deltas_telescope() {
        let c = RxCounters::new();
        c.add_batch(4);
        let a = c.snapshot();
        c.add_batch(6);
        c.add_eagain();
        let b = c.snapshot();
        let d = b.delta_since(&a);
        assert_eq!(d.datagrams, 6);
        assert_eq!(d.batches, 1);
        assert_eq!(d.eagain_spins, 1);
        // Saturating: a reversed pair cannot underflow.
        assert_eq!(a.delta_since(&b).datagrams, 0);
    }
}

//! Canonical experiment topologies.
//!
//! Every figure compares some subset of three network configurations on
//! the same machine shape:
//!
//! * **Host** — native host networking;
//! * **Con** — vanilla Docker-style VXLAN overlay;
//! * **Falcon** — the overlay with Falcon's steering enabled.
//!
//! Two machine shapes cover the paper's tests:
//!
//! * the *single-flow* shape (`Scenario::single_flow`): 8 cores, a
//!   single-queue NIC with its IRQ on core 0, RPS on cores 1–4, the
//!   application thread on core 5 — the layout the paper's Figure 11
//!   CPU breakdown shows;
//! * the *multi-flow* shape (`Scenario::multi_flow`): 14 cores, a
//!   4-queue NIC on cores 0–3, RPS (and `FALCON_CPUS`) on cores 0–5,
//!   application threads on cores 8–13.

use falcon::FalconConfig;
use falcon_cpusim::CpuSet;
use falcon_netdev::{LinkSpeed, NicConfig};
use falcon_netstack::sim::{App, SimRunner};
use falcon_netstack::{KernelVersion, NetMode, SimConfig, StackConfig, StayLocal, Steering};
use serde::{Deserialize, Serialize};

/// Which of the paper's three configurations to run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Mode {
    /// Native host network.
    Host,
    /// Vanilla overlay ("Con").
    Vanilla,
    /// Falcon overlay with the given configuration.
    Falcon(FalconConfig),
    /// Host network with GRO splitting ("Host+", Figure 13).
    HostPlus(FalconConfig),
}

impl Mode {
    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Mode::Host => "Host",
            Mode::Vanilla => "Con",
            Mode::Falcon(_) => "Falcon",
            Mode::HostPlus(_) => "Host+",
        }
    }
}

/// A fully specified experiment scenario.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Configuration label triple member.
    pub mode: Mode,
    /// Stack configuration (before the mode's adjustments).
    pub stack: StackConfig,
    /// Link speed.
    pub link: LinkSpeed,
    /// Random seed.
    pub seed: u64,
}

/// The single-flow shape's application core.
pub const SF_APP_CORE: usize = 5;
/// The multi-flow shape's application cores.
pub const MF_APP_CORES: [usize; 6] = [8, 9, 10, 11, 12, 13];

impl Scenario {
    /// The single-flow topology.
    pub fn single_flow(mode: Mode, kernel: KernelVersion, link: LinkSpeed) -> Self {
        let net = match mode {
            Mode::Host | Mode::HostPlus(_) => NetMode::Host,
            Mode::Vanilla | Mode::Falcon(_) => NetMode::Overlay,
        };
        let mut stack = StackConfig::new(net, kernel, 8);
        stack.nic = NicConfig::single_queue(1024);
        stack.rps = Some(CpuSet::range(1, 5));
        Scenario {
            mode,
            stack,
            link,
            seed: 0x5EED_F00D,
        }
    }

    /// The multi-flow topology.
    pub fn multi_flow(mode: Mode, kernel: KernelVersion, link: LinkSpeed) -> Self {
        let net = match mode {
            Mode::Host | Mode::HostPlus(_) => NetMode::Host,
            Mode::Vanilla | Mode::Falcon(_) => NetMode::Overlay,
        };
        let mut stack = StackConfig::new(net, kernel, 14);
        stack.nic = NicConfig::multi_queue(4, 1024, 4);
        stack.rps = Some(CpuSet::range(0, 6));
        Scenario {
            mode,
            stack,
            link,
            seed: 0x5EED_F00D,
        }
    }

    /// The default Falcon configuration for the single-flow shape.
    pub fn sf_falcon() -> FalconConfig {
        FalconConfig::new(CpuSet::range(1, 5))
    }

    /// The default Falcon configuration for the multi-flow shape.
    pub fn mf_falcon() -> FalconConfig {
        FalconConfig::new(CpuSet::range(0, 6))
    }

    /// Overrides the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Applies a stack tweak.
    pub fn tweak(mut self, f: impl FnOnce(&mut StackConfig)) -> Self {
        f(&mut self.stack);
        self
    }

    /// Builds the runner with the given application.
    pub fn build(&self, app: Box<dyn App>) -> SimRunner {
        let mut stack = self.stack.clone();
        let steering: Box<dyn Steering> = match &self.mode {
            Mode::Host | Mode::Vanilla => Box::new(StayLocal),
            Mode::Falcon(cfg) | Mode::HostPlus(cfg) => {
                falcon::enable_falcon(&mut stack, cfg.clone())
            }
        };
        let mut cfg = SimConfig::new(stack);
        cfg.link = self.link;
        cfg.seed = self.seed;
        SimRunner::new(cfg, steering, app)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use falcon_netstack::sim::{App as AppTrait, SimApi};

    struct Noop;
    impl AppTrait for Noop {
        fn on_start(&mut self, _api: &mut SimApi<'_>) {}
    }

    #[test]
    fn labels() {
        assert_eq!(Mode::Host.label(), "Host");
        assert_eq!(Mode::Vanilla.label(), "Con");
        assert_eq!(Mode::Falcon(Scenario::sf_falcon()).label(), "Falcon");
        assert_eq!(Mode::HostPlus(Scenario::sf_falcon()).label(), "Host+");
    }

    #[test]
    fn single_flow_shape() {
        let s = Scenario::single_flow(Mode::Vanilla, KernelVersion::K419, LinkSpeed::HundredGbit);
        assert_eq!(s.stack.n_cores, 8);
        assert_eq!(s.stack.mode, NetMode::Overlay);
        assert_eq!(s.stack.nic.n_queues, 1);
        let h = Scenario::single_flow(Mode::Host, KernelVersion::K419, LinkSpeed::TenGbit);
        assert_eq!(h.stack.mode, NetMode::Host);
    }

    #[test]
    fn multi_flow_shape() {
        let s = Scenario::multi_flow(
            Mode::Falcon(Scenario::mf_falcon()),
            KernelVersion::K54,
            LinkSpeed::HundredGbit,
        );
        assert_eq!(s.stack.n_cores, 14);
        assert_eq!(s.stack.nic.n_queues, 4);
    }

    #[test]
    fn build_applies_falcon_split() {
        let cfg = Scenario::sf_falcon().with_split_gro(true);
        let s = Scenario::single_flow(
            Mode::Falcon(cfg),
            KernelVersion::K419,
            LinkSpeed::HundredGbit,
        );
        let runner = s.build(Box::new(Noop));
        assert!(runner.sim.inner.cfg.server.split_gro);
        let v = Scenario::single_flow(Mode::Vanilla, KernelVersion::K419, LinkSpeed::HundredGbit)
            .build(Box::new(Noop));
        assert!(!v.sim.inner.cfg.server.split_gro);
    }
}

//! The Toeplitz hash used by RSS-capable NICs.
//!
//! Receive Side Scaling (RSS) picks a hardware receive queue by hashing
//! the packet's 5-tuple with a Toeplitz matrix-vector product keyed by a
//! 40-byte secret. Multi-queue NIC models in `falcon-netdev` call
//! [`toeplitz_hash`] to decide which queue (and therefore which hardirq
//! core) a flow lands on — including the hash-collision imbalance the
//! paper observes in multi-flow tests (Figure 2c, Figure 5).

/// Microsoft's verification key from the RSS specification. Real NICs
/// ship with it as the default, which makes hash values comparable
/// across implementations.
pub const MICROSOFT_RSS_KEY: [u8; 40] = [
    0x6d, 0x5a, 0x56, 0xda, 0x25, 0x5b, 0x0e, 0xc2, 0x41, 0x67, 0x25, 0x3d, 0x43, 0xa3, 0x8f, 0xb0,
    0xd0, 0xca, 0x2b, 0xcb, 0xae, 0x7b, 0x30, 0xb4, 0x77, 0xcb, 0x2d, 0xa3, 0x80, 0x30, 0xf2, 0x0c,
    0x6a, 0x42, 0xb7, 0x3b, 0xbe, 0xac, 0x01, 0xfa,
];

/// Computes the Toeplitz hash of `input` under `key`.
///
/// For each set bit in the input (MSB first), XOR in the 32-bit window of
/// the key starting at that bit position.
///
/// # Panics
///
/// Panics if the key is shorter than `input.len() + 4` bytes (the
/// sliding 32-bit window must stay inside the key).
///
/// # Examples
///
/// ```
/// use falcon_khash::{toeplitz_hash, MICROSOFT_RSS_KEY};
///
/// // 5-tuple input: src ip, dst ip, src port, dst port (12 bytes).
/// let input = [
///     66, 9, 149, 187, // 66.9.149.187
///     161, 142, 100, 80, // 161.142.100.80
///     10, 234, // port 2794
///     6, 230, // port 1766
/// ];
/// // Known-answer vector from the Microsoft RSS specification.
/// assert_eq!(toeplitz_hash(&MICROSOFT_RSS_KEY, &input), 0x51cc_c178);
/// ```
pub fn toeplitz_hash(key: &[u8], input: &[u8]) -> u32 {
    assert!(
        key.len() >= input.len() + 4,
        "Toeplitz key too short: {} bytes for {} input bytes",
        key.len(),
        input.len()
    );
    let mut result: u32 = 0;
    // The 32-bit window of the key aligned with the current input byte.
    let mut window: u64 = ((key[0] as u64) << 24)
        | ((key[1] as u64) << 16)
        | ((key[2] as u64) << 8)
        | (key[3] as u64);

    for (i, &byte) in input.iter().enumerate() {
        // Extend the window with the next key byte so left-shifts stay
        // inside 40 bits.
        window = (window << 8) | key[i + 4] as u64;
        for bit in 0..8 {
            if byte & (0x80 >> bit) != 0 {
                result ^= (window >> (8 - bit)) as u32;
            }
        }
    }
    result
}

/// Builds the canonical RSS input for an IPv4 + L4-port flow.
pub fn rss_input_v4(src_ip: u32, dst_ip: u32, src_port: u16, dst_port: u16) -> [u8; 12] {
    let mut input = [0u8; 12];
    input[0..4].copy_from_slice(&src_ip.to_be_bytes());
    input[4..8].copy_from_slice(&dst_ip.to_be_bytes());
    input[8..10].copy_from_slice(&src_port.to_be_bytes());
    input[10..12].copy_from_slice(&dst_port.to_be_bytes());
    input
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(a: u8, b: u8, c: u8, d: u8) -> u32 {
        u32::from_be_bytes([a, b, c, d])
    }

    /// Known-answer tests from the Microsoft RSS verification suite
    /// (IPv4 with TCP ports).
    #[test]
    fn microsoft_known_answers() {
        let cases = [
            (
                ip(66, 9, 149, 187),
                ip(161, 142, 100, 80),
                2794u16,
                1766u16,
                0x51cc_c178u32,
            ),
            (
                ip(199, 92, 111, 2),
                ip(65, 69, 140, 83),
                14230,
                4739,
                0xc626_b0ea,
            ),
            (
                ip(24, 19, 198, 95),
                ip(12, 22, 207, 184),
                12898,
                38024,
                0x5c2b_394a,
            ),
            (
                ip(38, 27, 205, 30),
                ip(209, 142, 163, 6),
                48228,
                2217,
                0xafc7_327f,
            ),
            (
                ip(153, 39, 163, 191),
                ip(202, 188, 127, 2),
                44251,
                1303,
                0x10e8_28a2,
            ),
        ];
        for (src, dst, sport, dport, expected) in cases {
            let input = rss_input_v4(src, dst, sport, dport);
            assert_eq!(
                toeplitz_hash(&MICROSOFT_RSS_KEY, &input),
                expected,
                "RSS vector {src:#x}->{dst:#x}"
            );
        }
    }

    #[test]
    fn ip_only_known_answers() {
        // 2-tuple (IP-only) vectors from the same specification.
        let cases = [
            (ip(66, 9, 149, 187), ip(161, 142, 100, 80), 0x323e_8fc2u32),
            (ip(199, 92, 111, 2), ip(65, 69, 140, 83), 0xd718_262a),
        ];
        for (src, dst, expected) in cases {
            let mut input = [0u8; 8];
            input[0..4].copy_from_slice(&src.to_be_bytes());
            input[4..8].copy_from_slice(&dst.to_be_bytes());
            assert_eq!(toeplitz_hash(&MICROSOFT_RSS_KEY, &input), expected);
        }
    }

    #[test]
    fn zero_input_hashes_to_zero() {
        assert_eq!(toeplitz_hash(&MICROSOFT_RSS_KEY, &[0u8; 12]), 0);
    }

    #[test]
    #[should_panic(expected = "key too short")]
    fn short_key_panics() {
        let _ = toeplitz_hash(&[0u8; 8], &[0u8; 12]);
    }

    #[test]
    fn linearity() {
        // Toeplitz is linear over GF(2): H(a ^ b) == H(a) ^ H(b).
        let a = rss_input_v4(ip(10, 0, 0, 1), ip(10, 0, 0, 2), 1111, 2222);
        let b = rss_input_v4(ip(192, 168, 7, 7), ip(172, 16, 0, 9), 3333, 4444);
        let xored: Vec<u8> = a.iter().zip(b.iter()).map(|(x, y)| x ^ y).collect();
        assert_eq!(
            toeplitz_hash(&MICROSOFT_RSS_KEY, &xored),
            toeplitz_hash(&MICROSOFT_RSS_KEY, &a) ^ toeplitz_hash(&MICROSOFT_RSS_KEY, &b)
        );
    }
}
